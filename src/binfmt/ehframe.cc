#include "binfmt/ehframe.hh"

#include <algorithm>

#include "isa/bytes.hh"
#include "support/logging.hh"

namespace icp
{

std::optional<Offset>
FdeRecord::landingPadFor(Offset off) const
{
    for (const auto &range : tryRanges) {
        if (off >= range.startOff && off < range.endOff)
            return range.lpOff;
    }
    return std::nullopt;
}

std::vector<std::uint8_t>
serializeEhFrame(const std::vector<FdeRecord> &fdes)
{
    std::vector<std::uint8_t> out;
    putU32(out, static_cast<std::uint32_t>(fdes.size()));
    for (const auto &fde : fdes) {
        putU64(out, fde.start);
        putU64(out, fde.end);
        putU32(out, fde.frameSize);
        putU8(out, static_cast<std::uint8_t>(
            (fde.raOnStack ? 1 : 0) |
            (fde.savesCalleeSaved ? 2 : 0)));
        putU32(out, static_cast<std::uint32_t>(fde.raOffset));
        putU32(out, static_cast<std::uint32_t>(fde.tryRanges.size()));
        for (const auto &range : fde.tryRanges) {
            putU32(out, static_cast<std::uint32_t>(range.startOff));
            putU32(out, static_cast<std::uint32_t>(range.endOff));
            putU32(out, static_cast<std::uint32_t>(range.lpOff));
        }
    }
    return out;
}

std::vector<FdeRecord>
parseEhFrame(const std::vector<std::uint8_t> &bytes)
{
    std::vector<FdeRecord> fdes;
    std::size_t pos = 0;
    auto need = [&](std::size_t n) {
        icp_assert(pos + n <= bytes.size(), ".eh_frame truncated");
    };
    need(4);
    const std::uint32_t count = getU32(bytes.data());
    pos = 4;
    fdes.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) {
        FdeRecord fde;
        need(29);
        fde.start = getU64(bytes.data() + pos);
        fde.end = getU64(bytes.data() + pos + 8);
        fde.frameSize = getU32(bytes.data() + pos + 16);
        fde.raOnStack = (bytes[pos + 20] & 1) != 0;
        fde.savesCalleeSaved = (bytes[pos + 20] & 2) != 0;
        fde.raOffset = static_cast<std::int32_t>(
            getU32(bytes.data() + pos + 21));
        const std::uint32_t ranges = getU32(bytes.data() + pos + 25);
        pos += 29;
        fde.tryRanges.reserve(ranges);
        for (std::uint32_t r = 0; r < ranges; ++r) {
            need(12);
            TryRange range;
            range.startOff = getU32(bytes.data() + pos);
            range.endOff = getU32(bytes.data() + pos + 4);
            range.lpOff = getU32(bytes.data() + pos + 8);
            pos += 12;
            fde.tryRanges.push_back(range);
        }
        fdes.push_back(std::move(fde));
    }
    return fdes;
}

FdeIndex::FdeIndex(std::vector<FdeRecord> fdes)
    : fdes_(std::move(fdes))
{
    std::sort(fdes_.begin(), fdes_.end(),
              [](const FdeRecord &a, const FdeRecord &b) {
                  return a.start < b.start;
              });
}

const FdeRecord *
FdeIndex::find(Addr pc) const
{
    auto it = std::upper_bound(
        fdes_.begin(), fdes_.end(), pc,
        [](Addr a, const FdeRecord &fde) { return a < fde.start; });
    if (it == fdes_.begin())
        return nullptr;
    --it;
    if (pc < it->end)
        return &*it;
    return nullptr;
}

} // namespace icp
