#include "stats.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

#include "logging.hh"

namespace icp
{

void
SampleStats::add(double v)
{
    samples_.push_back(v);
}

double
SampleStats::min() const
{
    icp_assert(!samples_.empty(), "SampleStats::min on empty set");
    return *std::min_element(samples_.begin(), samples_.end());
}

double
SampleStats::max() const
{
    icp_assert(!samples_.empty(), "SampleStats::max on empty set");
    return *std::max_element(samples_.begin(), samples_.end());
}

double
SampleStats::mean() const
{
    icp_assert(!samples_.empty(), "SampleStats::mean on empty set");
    double total = 0;
    for (double v : samples_)
        total += v;
    return total / static_cast<double>(samples_.size());
}

double
SampleStats::percentile(double p) const
{
    icp_assert(!samples_.empty(), "SampleStats::percentile on empty set");
    icp_assert(p >= 0 && p <= 100, "percentile out of range");
    std::vector<double> sorted = samples_;
    std::sort(sorted.begin(), sorted.end());
    if (sorted.size() == 1)
        return sorted.front();
    const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
    const auto lo = static_cast<std::size_t>(std::floor(rank));
    const auto hi = static_cast<std::size_t>(std::ceil(rank));
    const double frac = rank - static_cast<double>(lo);
    return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

const char *
stageName(Stage stage)
{
    switch (stage) {
      case Stage::disasm: return "disasm";
      case Stage::cfg: return "cfg";
      case Stage::jumpTable: return "jump-table";
      case Stage::liveness: return "liveness";
      case Stage::funcPtr: return "func-ptr";
      case Stage::relocate: return "relocation";
      case Stage::trampoline: return "trampoline";
      case Stage::output: return "output";
      case Stage::lint: return "lint";
      case Stage::lintChains: return "lint.chains";
      case Stage::lintClones: return "lint.clones";
      case Stage::lintPtrs: return "lint.ptrs";
      case Stage::cacheLoad: return "cache.load";
      case Stage::cacheSave: return "cache.save";
      case Stage::cacheRebase: return "cache.rebase";
      case Stage::depsCompute: return "deps.compute";
      case Stage::depsValidate: return "deps.validate";
      case Stage::serve: return "serve.req";
      case Stage::count_: break;
    }
    return "?";
}

StageTimers &
StageTimers::global()
{
    static StageTimers timers;
    return timers;
}

void
StageTimers::add(Stage stage, std::uint64_t nanos)
{
    nanos_[static_cast<unsigned>(stage)].fetch_add(
        nanos, std::memory_order_relaxed);
}

std::uint64_t
StageTimers::nanos(Stage stage) const
{
    return nanos_[static_cast<unsigned>(stage)].load(
        std::memory_order_relaxed);
}

void
StageTimers::reset()
{
    for (auto &n : nanos_)
        n.store(0, std::memory_order_relaxed);
    CacheCounters::global().reset();
    DepsCounters::global().reset();
    StreamCounters::global().reset();
    ServeCounters::global().reset();
}

CacheCounters &
CacheCounters::global()
{
    static CacheCounters counters;
    return counters;
}

void
CacheCounters::reset()
{
    bytesMapped.store(0, std::memory_order_relaxed);
    bytesAppended.store(0, std::memory_order_relaxed);
    entriesLazy.store(0, std::memory_order_relaxed);
    crossHits.store(0, std::memory_order_relaxed);
}

DepsCounters &
DepsCounters::global()
{
    static DepsCounters counters;
    return counters;
}

void
DepsCounters::reset()
{
    rangesRecorded.store(0, std::memory_order_relaxed);
    bytesRecorded.store(0, std::memory_order_relaxed);
    hitsValidated.store(0, std::memory_order_relaxed);
    hitsRejected.store(0, std::memory_order_relaxed);
}

StreamCounters &
StreamCounters::global()
{
    static StreamCounters counters;
    return counters;
}

void
StreamCounters::reset()
{
    bytesStreamed.store(0, std::memory_order_relaxed);
    windowOverflows.store(0, std::memory_order_relaxed);
}

ServeCounters &
ServeCounters::global()
{
    static ServeCounters counters;
    return counters;
}

void
ServeCounters::reset()
{
    requests.store(0, std::memory_order_relaxed);
    errors.store(0, std::memory_order_relaxed);
    sessionHits.store(0, std::memory_order_relaxed);
    sessionMisses.store(0, std::memory_order_relaxed);
    evictions.store(0, std::memory_order_relaxed);
    timeouts.store(0, std::memory_order_relaxed);
    badFrames.store(0, std::memory_order_relaxed);
    rejected.store(0, std::memory_order_relaxed);
}

std::uint64_t
peakRssBytes()
{
#if defined(__unix__) || defined(__APPLE__)
    struct rusage ru;
    if (getrusage(RUSAGE_SELF, &ru) != 0)
        return 0;
#if defined(__APPLE__)
    return static_cast<std::uint64_t>(ru.ru_maxrss); // already bytes
#else
    return static_cast<std::uint64_t>(ru.ru_maxrss) * 1024; // KiB
#endif
#else
    return 0;
#endif
}

std::string
StageTimers::table() const
{
    std::string out;
    char line[160];
    for (unsigned s = 0; s < static_cast<unsigned>(Stage::count_);
         ++s) {
        const auto stage = static_cast<Stage>(s);
        std::snprintf(line, sizeof(line), "  %-12s %10.3f ms\n",
                      stageName(stage),
                      static_cast<double>(nanos(stage)) / 1e6);
        out += line;
    }
    const CacheCounters &cc = CacheCounters::global();
    std::snprintf(line, sizeof(line),
                  "  %-12s %10llu bytes mapped, %llu appended, "
                  "%llu lazy entries, %llu cross hits\n",
                  "cache.io",
                  static_cast<unsigned long long>(
                      cc.bytesMapped.load(std::memory_order_relaxed)),
                  static_cast<unsigned long long>(cc.bytesAppended.load(
                      std::memory_order_relaxed)),
                  static_cast<unsigned long long>(cc.entriesLazy.load(
                      std::memory_order_relaxed)),
                  static_cast<unsigned long long>(cc.crossHits.load(
                      std::memory_order_relaxed)));
    out += line;
    const DepsCounters &dc = DepsCounters::global();
    std::snprintf(
        line, sizeof(line),
        "  %-12s %10llu ranges (%llu bytes), %llu hits ok, "
        "%llu rejected\n",
        "deps.io",
        static_cast<unsigned long long>(
            dc.rangesRecorded.load(std::memory_order_relaxed)),
        static_cast<unsigned long long>(
            dc.bytesRecorded.load(std::memory_order_relaxed)),
        static_cast<unsigned long long>(
            dc.hitsValidated.load(std::memory_order_relaxed)),
        static_cast<unsigned long long>(
            dc.hitsRejected.load(std::memory_order_relaxed)));
    out += line;
    const StreamCounters &sc = StreamCounters::global();
    std::snprintf(line, sizeof(line),
                  "  %-12s %10llu bytes streamed, %llu window "
                  "overflows\n",
                  "stream.io",
                  static_cast<unsigned long long>(sc.bytesStreamed.load(
                      std::memory_order_relaxed)),
                  static_cast<unsigned long long>(sc.windowOverflows.load(
                      std::memory_order_relaxed)));
    out += line;
    const ServeCounters &vc = ServeCounters::global();
    std::snprintf(
        line, sizeof(line),
        "  %-12s %10llu requests (%llu errors), %llu hits, "
        "%llu misses, %llu evicted\n",
        "serve.io",
        static_cast<unsigned long long>(
            vc.requests.load(std::memory_order_relaxed)),
        static_cast<unsigned long long>(
            vc.errors.load(std::memory_order_relaxed)),
        static_cast<unsigned long long>(
            vc.sessionHits.load(std::memory_order_relaxed)),
        static_cast<unsigned long long>(
            vc.sessionMisses.load(std::memory_order_relaxed)),
        static_cast<unsigned long long>(
            vc.evictions.load(std::memory_order_relaxed)));
    out += line;
    std::snprintf(line, sizeof(line), "  %-12s %10llu bytes\n",
                  "peak-rss",
                  static_cast<unsigned long long>(peakRssBytes()));
    out += line;
    return out;
}

std::string
StageTimers::json() const
{
    std::string out = "{";
    char item[96];
    for (unsigned s = 0; s < static_cast<unsigned>(Stage::count_);
         ++s) {
        const auto stage = static_cast<Stage>(s);
        std::snprintf(item, sizeof(item), "%s\"%s_ms\": %.3f",
                      s == 0 ? "" : ", ", stageName(stage),
                      static_cast<double>(nanos(stage)) / 1e6);
        out += item;
    }
    const CacheCounters &cc = CacheCounters::global();
    char counters[256];
    std::snprintf(
        counters, sizeof(counters),
        ", \"cache_bytes_mapped\": %llu, \"cache_bytes_appended\": "
        "%llu, \"cache_entries_lazy\": %llu, "
        "\"cache_cross_hits\": %llu",
        static_cast<unsigned long long>(
            cc.bytesMapped.load(std::memory_order_relaxed)),
        static_cast<unsigned long long>(
            cc.bytesAppended.load(std::memory_order_relaxed)),
        static_cast<unsigned long long>(
            cc.entriesLazy.load(std::memory_order_relaxed)),
        static_cast<unsigned long long>(
            cc.crossHits.load(std::memory_order_relaxed)));
    out += counters;
    const DepsCounters &dc = DepsCounters::global();
    char deps[192];
    std::snprintf(
        deps, sizeof(deps),
        ", \"deps_ranges_recorded\": %llu, \"deps_bytes_recorded\": "
        "%llu, \"deps_hits_validated\": %llu, "
        "\"deps_hits_rejected\": %llu",
        static_cast<unsigned long long>(
            dc.rangesRecorded.load(std::memory_order_relaxed)),
        static_cast<unsigned long long>(
            dc.bytesRecorded.load(std::memory_order_relaxed)),
        static_cast<unsigned long long>(
            dc.hitsValidated.load(std::memory_order_relaxed)),
        static_cast<unsigned long long>(
            dc.hitsRejected.load(std::memory_order_relaxed)));
    out += deps;
    const ServeCounters &vc = ServeCounters::global();
    char serve[384];
    std::snprintf(
        serve, sizeof(serve),
        ", \"serve_requests\": %llu, \"serve_errors\": %llu, "
        "\"serve_session_hits\": %llu, \"serve_session_misses\": "
        "%llu, \"serve_evictions\": %llu, \"serve_timeouts\": %llu, "
        "\"serve_bad_frames\": %llu, \"serve_rejected\": %llu",
        static_cast<unsigned long long>(
            vc.requests.load(std::memory_order_relaxed)),
        static_cast<unsigned long long>(
            vc.errors.load(std::memory_order_relaxed)),
        static_cast<unsigned long long>(
            vc.sessionHits.load(std::memory_order_relaxed)),
        static_cast<unsigned long long>(
            vc.sessionMisses.load(std::memory_order_relaxed)),
        static_cast<unsigned long long>(
            vc.evictions.load(std::memory_order_relaxed)),
        static_cast<unsigned long long>(
            vc.timeouts.load(std::memory_order_relaxed)),
        static_cast<unsigned long long>(
            vc.badFrames.load(std::memory_order_relaxed)),
        static_cast<unsigned long long>(
            vc.rejected.load(std::memory_order_relaxed)));
    out += serve;
    const StreamCounters &sc = StreamCounters::global();
    std::snprintf(
        counters, sizeof(counters),
        ", \"output_bytes_streamed\": %llu, "
        "\"stream_window_overflows\": %llu, \"peak_rss_bytes\": %llu",
        static_cast<unsigned long long>(
            sc.bytesStreamed.load(std::memory_order_relaxed)),
        static_cast<unsigned long long>(
            sc.windowOverflows.load(std::memory_order_relaxed)),
        static_cast<unsigned long long>(peakRssBytes()));
    out += counters;
    out += "}";
    return out;
}

std::string
formatPercent(double v, int decimals)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f%%", decimals, v * 100.0);
    return buf;
}

double
relativeDelta(double a, double b)
{
    icp_assert(a != 0, "relativeDelta: zero base");
    return (b - a) / a;
}

} // namespace icp
