/**
 * @file
 * ISA-layer tests: property-style encode/decode round trips over
 * randomized instructions on all three codecs, branch-range edges,
 * assembler label/fixup resolution, and register def/use sets.
 */

#include <gtest/gtest.h>

#include "isa/arch.hh"
#include "isa/assembler.hh"
#include "isa/bytes.hh"
#include "isa/reg_usage.hh"
#include "support/random.hh"

using namespace icp;

namespace
{

class CodecPerArch : public ::testing::TestWithParam<Arch>
{
  protected:
    const ArchInfo &arch() const { return ArchInfo::get(GetParam()); }
};

std::string
archOnly(const ::testing::TestParamInfo<Arch> &info)
{
    switch (info.param) {
      case Arch::x64: return "x64";
      case Arch::ppc64le: return "ppc64le";
      case Arch::aarch64: return "aarch64";
    }
    return "unknown";
}

Reg
gpReg(Rng &rng)
{
    return static_cast<Reg>(rng.range(0, num_gp_regs - 1));
}

/** A random instruction encodable on the given ISA. */
Instruction
randomInstruction(Rng &rng, const ArchInfo &arch, Addr at)
{
    const bool fixed = arch.fixedLength;
    for (;;) {
        switch (rng.range(0, 15)) {
          case 0: return makeNop();
          case 1: return makeAddImm(gpReg(rng),
                      static_cast<std::int64_t>(rng.range(0, 1000)) -
                          500);
          case 2: return makeMovReg(gpReg(rng), gpReg(rng));
          case 3: return makeXor(gpReg(rng), gpReg(rng));
          case 4: return makeCmpImm(gpReg(rng),
                      static_cast<std::int64_t>(rng.range(0, 100)));
          case 5:
            return makeJmp(at + 4 +
                           rng.range(0, 1 << 20) * arch.instrAlign);
          case 6:
            return makeJmpCond(
                static_cast<Cond>(rng.range(0, 5)),
                at + 4 + rng.range(0, 1 << 16) * arch.instrAlign);
          case 7:
            return makeCall(at + 4 +
                            rng.range(0, 1 << 20) * arch.instrAlign);
          case 8: return makeJmpInd(gpReg(rng));
          case 9: return makeRet();
          case 10:
            return makeLoad(gpReg(rng), Reg::sp,
                            static_cast<std::int64_t>(
                                rng.range(0, 100)) * 8);
          case 11:
            return makeStore(Reg::sp,
                             static_cast<std::int64_t>(
                                 rng.range(0, 100)) * 8,
                             gpReg(rng));
          case 12:
            return makeLoadIdx(gpReg(rng), gpReg(rng), gpReg(rng),
                               static_cast<std::uint8_t>(
                                   1u << rng.range(0, 3)),
                               0, rng.chance(0.5));
          case 13:
            if (fixed)
                return makeMovZk(gpReg(rng),
                                 static_cast<std::uint16_t>(
                                     rng.range(0, 0xffff)),
                                 static_cast<std::uint8_t>(
                                     rng.range(0, 3) * 16),
                                 rng.chance(0.5));
            return makeMovImm(gpReg(rng),
                              static_cast<std::int64_t>(rng.next()));
          case 14:
            return makeShlImm(gpReg(rng),
                              static_cast<std::uint8_t>(
                                  rng.range(0, 63)));
          case 15:
            return makeCallRt(static_cast<std::uint32_t>(
                rng.range(0, (1 << 20) - 1)));
        }
    }
}

bool
equivalent(const Instruction &a, const Instruction &b,
           const ArchInfo &arch)
{
    if (a.op != b.op)
        return false;
    if (isDirectBranch(a.op))
        return a.target == b.target && a.cond == b.cond;
    if (a.op == Opcode::Load || a.op == Opcode::Store) {
        return a.rd == b.rd && a.rs1 == b.rs1 && a.rs2 == b.rs2 &&
               a.imm == b.imm;
    }
    if (a.op == Opcode::MovImm && arch.fixedLength) {
        return a.rd == b.rd && (a.imm & 0xffff) == (b.imm & 0xffff) &&
               a.movShift == b.movShift && a.movKeep == b.movKeep;
    }
    return a.rd == b.rd && a.rs1 == b.rs1 && a.rs2 == b.rs2 &&
           a.imm == b.imm && a.memSize == b.memSize &&
           a.signedLoad == b.signedLoad;
}

} // namespace

TEST_P(CodecPerArch, RandomRoundTrip)
{
    Rng rng(0xabc0 + static_cast<unsigned>(GetParam()));
    const Addr at = 0x400000;
    for (int i = 0; i < 5000; ++i) {
        const Instruction in = randomInstruction(rng, arch(), at);
        std::vector<std::uint8_t> bytes;
        ASSERT_TRUE(arch().codec->encode(in, at, bytes))
            << in.toString();
        ASSERT_EQ(bytes.size(), arch().codec->encodedLength(in))
            << in.toString();
        Instruction out;
        ASSERT_TRUE(arch().codec->decode(bytes.data(), bytes.size(),
                                         at, out))
            << in.toString();
        ASSERT_EQ(out.length, bytes.size()) << in.toString();
        ASSERT_TRUE(equivalent(in, out, arch()))
            << in.toString() << " vs " << out.toString();
    }
}

TEST_P(CodecPerArch, ClobberBytesDecodeIllegal)
{
    const std::uint8_t zeros[8] = {};
    const std::uint8_t ffs[8] = {0xff, 0xff, 0xff, 0xff,
                                 0xff, 0xff, 0xff, 0xff};
    Instruction out;
    EXPECT_FALSE(arch().codec->decode(zeros, 8, 0x400000, out));
    EXPECT_EQ(out.op, Opcode::Illegal);
    EXPECT_FALSE(arch().codec->decode(ffs, 8, 0x400000, out));
}

TEST_P(CodecPerArch, BranchRangeEdges)
{
    const Addr at = 0x10000000;
    auto try_encode = [&](Addr target) {
        std::vector<std::uint8_t> bytes;
        return arch().codec->encode(makeJmp(target), at, bytes);
    };
    // x64 displacements are relative to the instruction end, so
    // leave the 5-byte length as margin on that ISA.
    const std::int64_t margin =
        arch().fixedLength ? 0 : arch().directJmpLen;
    EXPECT_TRUE(try_encode(at + arch().directJmpRange - margin));
    EXPECT_TRUE(try_encode(at - arch().directJmpRange + margin));
    if (arch().fixedLength) {
        EXPECT_FALSE(
            try_encode(at + arch().directJmpRange + arch().instrAlign));
    }
}

INSTANTIATE_TEST_SUITE_P(AllArches, CodecPerArch,
                         ::testing::Values(Arch::x64, Arch::ppc64le,
                                           Arch::aarch64),
                         archOnly);

TEST(Assembler, LabelsResolveForwardAndBackward)
{
    const auto &arch = ArchInfo::get(Arch::x64);
    Assembler as(arch, 0x1000);
    const auto top = as.newLabel();
    const auto bottom = as.newLabel();
    as.bind(top);
    as.emitToLabel(makeJmp(0), bottom);      // forward
    as.emit(makeNop());
    as.bind(bottom);
    as.emitToLabel(makeJmpCond(Cond::eq, 0), top); // backward
    const auto bytes = as.finalize();

    Instruction in;
    ASSERT_TRUE(arch.codec->decode(bytes.data(), bytes.size(),
                                   0x1000, in));
    EXPECT_EQ(in.op, Opcode::Jmp);
    EXPECT_EQ(in.target, as.labelAddr(bottom));
    const Offset off = as.labelAddr(bottom) - 0x1000;
    ASSERT_TRUE(arch.codec->decode(bytes.data() + off,
                                   bytes.size() - off,
                                   as.labelAddr(bottom), in));
    EXPECT_EQ(in.op, Opcode::JmpCond);
    EXPECT_EQ(in.target, 0x1000u);
}

TEST(Assembler, MovImm64IsValueIndependentLengthOnFixed)
{
    const auto &arch = ArchInfo::get(Arch::aarch64);
    for (std::uint64_t v : {0ULL, 1ULL, 0xffffULL, 0x123456789abcdefULL,
                            ~0ULL}) {
        Assembler as(arch, 0x1000);
        as.emitMovImm64(Reg::r3, v);
        EXPECT_EQ(as.finalize().size(), 16u) << v;
    }
}

TEST(Assembler, TocPairComputesHa)
{
    const auto &arch = ArchInfo::get(Arch::ppc64le);
    const Addr toc = 0x500000;
    Assembler as(arch, 0x1000);
    const auto label = as.newLabel();
    as.emitAddisTocPair(Reg::r2, label, toc);
    as.emit(makeHalt());
    as.bind(label); // the pair points at this spot
    const Addr target = as.labelAddr(label);
    const auto bytes = as.finalize();

    Instruction hi, lo;
    ASSERT_TRUE(arch.codec->decode(bytes.data(), 4, 0x1000, hi));
    ASSERT_TRUE(arch.codec->decode(bytes.data() + 4, 4, 0x1004, lo));
    EXPECT_EQ(hi.op, Opcode::AddisToc);
    EXPECT_EQ(lo.op, Opcode::AddImm);
    const std::int64_t value =
        static_cast<std::int64_t>(toc) + (hi.imm << 16) + lo.imm;
    EXPECT_EQ(static_cast<Addr>(value), target);
}

TEST(Assembler, DataLabelDiffEmitsScaledEntries)
{
    const auto &arch = ArchInfo::get(Arch::aarch64);
    Assembler as(arch, 0x2000);
    const auto base = as.newLabel();
    const auto target = as.newLabel();
    as.bind(base);
    as.emit(makeNop());
    as.emit(makeNop());
    as.bind(target);
    as.emit(makeHalt());
    as.emitDataLabelDiff(target, base, 2, 2); // (8 bytes >> 2) = 2
    const auto bytes = as.finalize();
    EXPECT_EQ(getU16(bytes.data() + bytes.size() - 2), 2u);
}

TEST(RegUsage, CallAndRetConventionsDiffer)
{
    const auto &x64 = ArchInfo::get(Arch::x64);
    const auto &ppc = ArchInfo::get(Arch::ppc64le);
    const Instruction call = makeCall(0x1000);
    EXPECT_TRUE(regsWritten(call, x64).contains(Reg::sp));
    EXPECT_FALSE(regsWritten(call, x64).contains(Reg::lr));
    EXPECT_TRUE(regsWritten(call, ppc).contains(Reg::lr));

    const Instruction ret = makeRet();
    EXPECT_TRUE(regsRead(ret, ppc).contains(Reg::lr));
    EXPECT_TRUE(regsRead(ret, x64).contains(Reg::sp));
}

TEST(RegUsage, MovKeepReadsDestination)
{
    const auto &arch = ArchInfo::get(Arch::aarch64);
    EXPECT_FALSE(regsRead(makeMovZk(Reg::r3, 1, 0, false), arch)
                     .contains(Reg::r3));
    EXPECT_TRUE(regsRead(makeMovZk(Reg::r3, 1, 16, true), arch)
                    .contains(Reg::r3));
}
