#include "codegen/workloads.hh"

#include <algorithm>

#include "support/logging.hh"
#include "support/random.hh"

namespace icp
{

namespace
{

/** Feature mix of one synthetic benchmark. */
struct Personality
{
    const char *name;
    unsigned funcs = 48;          ///< excluding main
    double switchProb = 0.0;      ///< switch statements per function
    unsigned switchCases = 8;
    double hardSwitchFrac = 0.0;  ///< of switch functions, per arch
    double indirectCallProb = 0.0;
    double throwPairProb = 0.0;   ///< catcher+thrower pairs
    double tailCallProb = 0.0;    ///< direct tail calls
    double indirectTailProb = 0.0;
    unsigned loopIters = 24;
    unsigned computeOps = 12;
    std::uint64_t mainIters = 600;
    bool fortran = false;
    bool cpp = false;
    std::uint64_t rodataPadding = 0;
};

/**
 * Build a ProgramSpec from a personality. The call structure is a
 * DAG: main calls hub functions, hubs call worker functions with
 * higher indices, workers are leaves. Throwing functions are only
 * ever called by their paired catcher; address-taken functions never
 * throw and make no further indirect calls (bounded recursion).
 */
ProgramSpec
buildFromPersonality(const Personality &p, Arch arch, bool pie,
                     std::uint64_t seed)
{
    Rng rng(seed);
    ProgramSpec spec;
    spec.name = p.name;
    spec.arch = arch;
    spec.pie = pie;
    spec.mainIterations = p.mainIters;
    spec.rodataPadding = p.rodataPadding;
    spec.features.cppExceptions = p.cpp;
    spec.features.fortranComponent = p.fortran;

    const unsigned n = p.funcs;
    const unsigned first_worker = 1 + n / 3; // [1, first_worker) hubs
    const unsigned num_hubs = first_worker - 1;
    // Workers [first_worker, first_free) are reserved as potential
    // throwers so that nothing but their paired catcher ever calls
    // them (an uncaught exception would abort the workload).
    const unsigned first_free = first_worker + num_hubs;
    icp_assert(first_free + 4 < n, "personality too small");
    spec.funcs.resize(n + 1);

    // Workers (leaves and near-leaves).
    for (unsigned i = first_worker; i <= n; ++i) {
        FuncSpec &fs = spec.funcs[i];
        fs.name = std::string(p.name) + "_w" + std::to_string(i);
        fs.computeOps = 4 +
            static_cast<unsigned>(rng.range(0, p.computeOps));
        fs.loopIters = rng.chance(0.3)
            ? static_cast<unsigned>(rng.range(2, 1 + p.loopIters))
            : 0;
        fs.alignment = rng.chance(0.5) ? 16 : 32;
        fs.padding = static_cast<unsigned>(rng.range(0, 12)) &
                     ~3u; // keep 4-byte multiple for the fixed ISAs
        if (rng.chance(p.switchProb)) {
            SwitchSpec sw;
            sw.cases = static_cast<unsigned>(
                1u << rng.range(2, 5)); // 4..32
            sw.entrySize = arch == Arch::aarch64
                ? (rng.chance(0.5) ? 1 : 2)
                : 4;
            if (sw.cases > 16 && sw.entrySize == 1)
                sw.entrySize = 2;
            sw.hard = rng.chance(p.hardSwitchFrac);
            fs.switches.push_back(sw);
        }
    }

    // A pool of address-taken compute leaves at the end.
    const unsigned takeable = std::max(4u, n / 8);
    for (unsigned k = 0; k < takeable; ++k) {
        FuncSpec &fs = spec.funcs[n - k];
        fs.addressTaken = true;
        fs.switches.clear();  // keep funcptr targets simple + safe
        fs.throwsOnOdd = false;
    }

    // Hubs call workers; some catch, some tail-call, some compare
    // function pointers.
    unsigned thrower_cursor = first_worker;
    for (unsigned i = 1; i < first_worker; ++i) {
        FuncSpec &fs = spec.funcs[i];
        fs.name = std::string(p.name) + "_h" + std::to_string(i);
        fs.computeOps = 4 +
            static_cast<unsigned>(rng.range(0, p.computeOps));
        fs.loopIters = rng.chance(0.5)
            ? static_cast<unsigned>(rng.range(2, 8))
            : 0;
        const unsigned ncallees = static_cast<unsigned>(
            rng.range(1, 3));
        for (unsigned c = 0; c < ncallees; ++c) {
            fs.callees.push_back(static_cast<unsigned>(
                rng.range(first_free, n)));
        }
        if (p.cpp && rng.chance(p.throwPairProb) &&
            thrower_cursor < first_free) {
            // Dedicated thrower worker, called only from here.
            FuncSpec &thrower = spec.funcs[thrower_cursor];
            thrower.throwsOnOdd = true;
            thrower.loopIters = 0; // looping leaves must not throw
            thrower.switches.clear();
            fs.catches = true;
            fs.callees = {thrower_cursor};
            ++thrower_cursor;
        }
        if (rng.chance(p.indirectCallProb))
            fs.indirectCalls =
                static_cast<unsigned>(rng.range(1, 2));
        if (p.cpp && rng.chance(0.2))
            fs.comparesFuncPtr = true;
        if (rng.chance(p.tailCallProb)) {
            fs.tailCallTo = static_cast<int>(
                rng.range(first_free, n - takeable));
        } else if (rng.chance(p.indirectTailProb)) {
            fs.indirectTailCall = true;
        }
    }

    // main: calls every hub each iteration.
    FuncSpec &fmain = spec.funcs[0];
    fmain.name = "main";
    fmain.computeOps = 6;
    for (unsigned i = 1; i < first_worker; ++i)
        fmain.callees.push_back(i);
    if (spec.funcs[n].addressTaken)
        fmain.indirectCalls = 1;

    return spec;
}

} // namespace

std::vector<std::string>
specCpuNames()
{
    return {
        "600.perlbench", "602.gcc", "603.bwaves", "605.mcf",
        "607.cactuBSSN", "619.lbm", "620.omnetpp", "621.wrf",
        "623.xalancbmk", "625.x264", "628.pop2", "631.deepsjeng",
        "638.imagick", "641.leela", "644.nab", "648.exchange2",
        "649.fotonik3d", "654.roms", "657.xz",
    };
}

std::vector<ProgramSpec>
specCpuSuite(Arch arch, bool pie)
{
    // Per-arch twists (§8.1): on ppc64le some jump tables stay
    // unresolvable even for us (hard switches leave gaps), and one
    // benchmark's data pushes .instr beyond the ±32 MB branch range;
    // aarch64 has a tiny unresolvable tail plus one benchmark beyond
    // the ±128 MB range would be impractical to simulate at full
    // size, so its range pressure comes from the same 40 MB blob.
    const bool is_ppc = arch == Arch::ppc64le;
    const bool is_a64 = arch == Arch::aarch64;
    const double hard = is_ppc ? 0.30 : (is_a64 ? 0.04 : 0.0);
    const std::uint64_t big_ro = 40ULL * 1024 * 1024;

    std::vector<Personality> ps = {
        // name          funcs  swPr  cases hard  indir  thr   tail  itail
        {"600.perlbench", 56, 0.45, 16, hard, 0.30, 0.15, 0.20, 0.10,
         16, 12, 500, false, false, 0},
        {"602.gcc", 72, 0.60, 32, hard, 0.25, 0.00, 0.25, 0.15,
         12, 10, 400, false, false, is_ppc ? big_ro : 0},
        {"603.bwaves", 28, 0.00, 4, 0.0, 0.00, 0.00, 0.00, 0.00,
         48, 24, 900, true, false, 0},
        {"605.mcf", 20, 0.10, 8, 0.0, 0.05, 0.00, 0.10, 0.00,
         32, 16, 900, false, false, 0},
        {"607.cactuBSSN", 40, 0.05, 4, 0.0, 0.00, 0.00, 0.00, 0.00,
         40, 28, 700, true, false, 0},
        {"619.lbm", 16, 0.00, 4, 0.0, 0.00, 0.00, 0.00, 0.00,
         56, 24, 1000, false, false, 0},
        {"620.omnetpp", 60, 0.25, 8, hard, 0.45, 0.40, 0.10, 0.10,
         12, 10, 400, false, true, 0},
        {"621.wrf", 64, 0.05, 4, 0.0, 0.00, 0.00, 0.05, 0.00,
         36, 24, 500, true, false, 0},
        {"623.xalancbmk", 64, 0.30, 16, hard, 0.50, 0.35, 0.10, 0.10,
         12, 10, 400, false, true, is_a64 ? big_ro : 0},
        {"625.x264", 44, 0.20, 8, 0.0, 0.40, 0.00, 0.15, 0.10,
         24, 16, 600, false, false, 0},
        {"628.pop2", 48, 0.05, 4, 0.0, 0.00, 0.00, 0.00, 0.00,
         40, 24, 600, true, false, 0},
        {"631.deepsjeng", 32, 0.25, 16, 0.0, 0.15, 0.00, 0.20, 0.05,
         24, 14, 700, false, false, 0},
        {"638.imagick", 40, 0.15, 8, 0.0, 0.35, 0.00, 0.10, 0.05,
         28, 18, 600, false, false, 0},
        {"641.leela", 36, 0.15, 8, hard, 0.30, 0.25, 0.10, 0.05,
         20, 14, 600, false, true, 0},
        {"644.nab", 28, 0.10, 8, 0.0, 0.10, 0.00, 0.05, 0.00,
         36, 20, 700, false, false, 0},
        {"648.exchange2", 24, 0.10, 8, 0.0, 0.00, 0.00, 0.00, 0.00,
         44, 22, 800, true, false, 0},
        {"649.fotonik3d", 28, 0.00, 4, 0.0, 0.00, 0.00, 0.00, 0.00,
         48, 26, 800, true, false, 0},
        {"654.roms", 36, 0.05, 4, 0.0, 0.00, 0.00, 0.00, 0.00,
         44, 24, 700, true, false, 0},
        {"657.xz", 24, 0.20, 8, 0.0, 0.10, 0.00, 0.15, 0.05,
         28, 16, 800, false, false, 0},
    };
    icp_assert(ps.size() == 19, "suite must have 19 benchmarks");

    std::vector<ProgramSpec> suite;
    std::uint64_t seed = 0x5eed0000 + static_cast<unsigned>(arch);
    for (const auto &p : ps)
        suite.push_back(buildFromPersonality(p, arch, pie, seed++));
    return suite;
}

ProgramSpec
libxulProfile()
{
    Personality p;
    p.name = "libxul";
    p.funcs = 420;
    p.switchProb = 0.30;
    p.switchCases = 16;
    p.hardSwitchFrac = 0.035; // a handful of unresolvable functions
    p.indirectCallProb = 0.45;
    p.throwPairProb = 0.30;
    p.tailCallProb = 0.12;
    p.indirectTailProb = 0.08;
    p.loopIters = 6;
    p.computeOps = 10;
    p.mainIters = 120;
    p.cpp = true;

    ProgramSpec spec = buildFromPersonality(p, Arch::x64, true,
                                            0xf12ef0c5);
    spec.sharedObject = true;
    spec.features.rustMetadata = true;
    spec.features.symbolVersioning = true;
    // A fixed handful of unresolvable dispatchers: the 0.07% of
    // functions the paper could not instrument (99.93% coverage).
    unsigned hardened = 0;
    for (auto &fs : spec.funcs) {
        if (!fs.switches.empty() && !fs.addressTaken &&
            hardened < 2) {
            fs.switches.front().hard = true;
            ++hardened;
        }
    }
    return spec;
}

ProgramSpec
dockerProfile()
{
    Personality p;
    p.name = "docker";
    p.funcs = 96;
    p.switchProb = 0.0; // Go's compiler emits no jump tables (§8.2)
    p.indirectCallProb = 0.55;
    p.tailCallProb = 0.05;
    p.loopIters = 10;
    p.computeOps = 10;
    p.mainIters = 400;

    ProgramSpec spec = buildFromPersonality(p, Arch::x64, true,
                                            0xd0c4e2);
    spec.features.isGo = true;
    spec.goRuntime = true;
    spec.goVtab = true;
    spec.goFuncPtrPlusOne = true;

    // The +1 target: a goexit-shaped function starting with a nop.
    FuncSpec goexit;
    goexit.name = "go.goexit";
    goexit.leadingNop = true;
    goexit.computeOps = 4;
    spec.funcs.push_back(goexit);
    return spec;
}

ProgramSpec
libcudaProfile()
{
    Rng rng(0xcdcdcd);
    ProgramSpec spec;
    spec.name = "libcuda";
    spec.arch = Arch::x64;
    spec.pie = true;
    spec.sharedObject = true;
    spec.features.symbolVersioning = true;
    spec.mainIterations = 250;

    // Many small driver entry points; a slice of them use dense
    // tiny-case dispatch switches that defeat naive per-block
    // trampoline placement (§9).
    const unsigned n = 360;
    spec.funcs.resize(n + 1);
    const unsigned hubs = 24;
    for (unsigned i = hubs + 1; i <= n; ++i) {
        FuncSpec &fs = spec.funcs[i];
        fs.name = "cu_f" + std::to_string(i);
        fs.computeOps = 2 +
            static_cast<unsigned>(rng.range(0, 6));
        fs.alignment = 16;
        if (rng.chance(0.35)) {
            SwitchSpec sw;
            sw.cases = static_cast<unsigned>(1u << rng.range(3, 5));
            sw.denseTiny = true;
            fs.switches.push_back(sw);
            // Driver dispatch loops: the tiny-case switch dominates
            // the function's execution.
            fs.loopIters = 14;
            fs.computeOps = 2;
        }
        if (i > n - 8)
            fs.addressTaken = true;
    }
    for (unsigned i = 1; i <= hubs; ++i) {
        FuncSpec &fs = spec.funcs[i];
        fs.name = "cu_api" + std::to_string(i);
        fs.computeOps = 6;
        fs.loopIters = 4;
        for (unsigned c = 0; c < 3; ++c) {
            fs.callees.push_back(static_cast<unsigned>(
                rng.range(hubs + 1, n)));
        }
        if (rng.chance(0.4))
            fs.indirectCalls = 1;
    }
    FuncSpec &fmain = spec.funcs[0];
    fmain.name = "main";
    for (unsigned i = 1; i <= hubs; ++i)
        fmain.callees.push_back(i);
    return spec;
}

namespace
{

/**
 * Component-cluster corpus shared by the chromium profiles. Each
 * component is an address-contiguous cluster: one entry hub with a
 * dispatch jump table, a body of workers (a slice of which are
 * dispatchers with their own tables), and a leaf pool of
 * address-taken callbacks at the cluster's end. Hubs call local
 * workers, a couple of leaves in *other* clusters (the cross-cluster
 * edges the shard planner must keep correct), and sometimes make an
 * indirect call through the callback pool. Every callee is a leaf or
 * near-leaf, so the call graph stays acyclic.
 */
ProgramSpec
buildChromiumCorpus(const char *name, unsigned components,
                    unsigned funcs_per, Arch arch, bool pie,
                    std::uint64_t seed)
{
    icp_assert(components >= 2 && funcs_per >= 16,
               "corpus too small");
    Rng rng(seed);
    ProgramSpec spec;
    spec.name = name;
    spec.arch = arch;
    spec.pie = pie;
    spec.mainIterations = 12;
    // Chromium builds with -fno-exceptions; dispatch-heavy C++
    // without unwind tables.
    spec.features.cppExceptions = false;

    // A string-table-like blob at the end of .rodata no analysis
    // reads: the data-only-edit target of the invalidation check.
    spec.rodataPadding = 2048;

    const unsigned n = components * funcs_per;
    const unsigned pool = 8; // address-taken leaves per component
    spec.funcs.resize(n + 1);
    auto fidx = [&](unsigned comp, unsigned local) {
        return 1 + comp * funcs_per + local;
    };

    for (unsigned c = 0; c < components; ++c) {
        // Workers (locals [1, funcs_per)); the tail `pool` of them
        // are the component's address-taken callback leaves.
        for (unsigned l = 1; l < funcs_per; ++l) {
            FuncSpec &fs = spec.funcs[fidx(c, l)];
            fs.name = "comp" + std::to_string(c) + "_f" +
                      std::to_string(l);
            fs.computeOps = 2 +
                static_cast<unsigned>(rng.range(0, 8));
            fs.loopIters = rng.chance(0.2)
                ? static_cast<unsigned>(rng.range(2, 10))
                : 0;
            fs.alignment = rng.chance(0.5) ? 16 : 32;
            fs.padding = static_cast<unsigned>(rng.range(0, 12)) &
                         ~3u;
            if (l + pool >= funcs_per) {
                fs.addressTaken = true; // callback leaf pool
                continue;
            }
            if (rng.chance(0.15)) {
                // Feature-flag readers: a data read-set on every
                // ISA, including ones whose jump tables embed in
                // .text.
                fs.readsGlobal = true;
                fs.globalSlot = static_cast<unsigned>(
                    rng.range(0, 7));
            }
            if (rng.chance(0.18)) {
                // Dispatcher: a cloned-jump-table candidate.
                SwitchSpec sw;
                sw.cases = static_cast<unsigned>(
                    1u << rng.range(2, 5)); // 4..32
                sw.entrySize = arch == Arch::aarch64
                    ? (rng.chance(0.5) ? 1 : 2)
                    : 4;
                if (sw.cases > 16 && sw.entrySize == 1)
                    sw.entrySize = 2;
                sw.hard = rng.chance(0.01);
                fs.switches.push_back(sw);
            } else if (rng.chance(0.06)) {
                // Thin forwarder tail-calling into the leaf pool.
                fs.tailCallTo = static_cast<int>(fidx(
                    c, funcs_per - 1 -
                           static_cast<unsigned>(
                               rng.range(0, pool - 1))));
            }
        }

        // The component entry hub.
        FuncSpec &hub = spec.funcs[fidx(c, 0)];
        hub.name = "comp" + std::to_string(c) + "_entry";
        hub.computeOps = 6;
        hub.loopIters = 2;
        SwitchSpec dispatch;
        dispatch.cases = 16;
        dispatch.entrySize = arch == Arch::aarch64 ? 2 : 4;
        // Merged case bodies give every hub table a duplicated
        // target, the shape the datadeps invalidation check pokes.
        dispatch.dupLastCase = true;
        hub.switches.push_back(dispatch);
        for (unsigned k = 0; k < 3; ++k) {
            hub.callees.push_back(fidx(
                c, 1 + static_cast<unsigned>(
                           rng.range(0, funcs_per - 2))));
        }
        // Cross-cluster edges into other components' leaf pools.
        for (unsigned k = 0; k < 2; ++k) {
            unsigned oc = static_cast<unsigned>(
                rng.range(0, components - 1));
            if (oc == c)
                oc = (oc + 1) % components;
            hub.callees.push_back(fidx(
                oc, funcs_per - 1 -
                        static_cast<unsigned>(
                            rng.range(0, pool - 1))));
        }
        if (rng.chance(0.5))
            hub.indirectCalls = 1;
    }

    FuncSpec &fmain = spec.funcs[0];
    fmain.name = "main";
    fmain.computeOps = 4;
    for (unsigned c = 0; c < components; ++c)
        fmain.callees.push_back(fidx(c, 0));
    fmain.indirectCalls = 1;
    return spec;
}

} // namespace

ProgramSpec
chromiumProfile()
{
    return buildChromiumCorpus("chromium", 48, 2500, Arch::x64,
                               true, 0xc4201e);
}

ProgramSpec
chromiumSmallProfile(Arch arch, bool pie)
{
    return buildChromiumCorpus("chromium-small", 24, 50, arch, pie,
                               0xc4511);
}

std::vector<ProgramSpec>
libcommonCorpus(Arch arch, unsigned count)
{
    icp_assert(count >= 2, "a corpus needs at least two binaries");
    constexpr unsigned core = 60; ///< shared static-lib functions
    constexpr unsigned tail = 38; ///< app-specific functions
    constexpr unsigned pool = 6;  ///< address-taken tail leaves

    // The shared core, generated ONCE with a fixed seed and embedded
    // verbatim in every binary at spec indices [1, 1+core). Core
    // functions only ever reference other core functions and their
    // own jump tables: no reads of .data globals, no funcptr-table
    // traffic, no address-taken members — everything they touch sits
    // at a link-base-relative position the layout knobs hold fixed,
    // so their emitted bytes agree across the corpus.
    Rng core_rng(0x11bc033);
    std::vector<FuncSpec> core_funcs(core);
    const unsigned core_hubs = core / 5;
    for (unsigned i = core_hubs; i < core; ++i) {
        FuncSpec &fs = core_funcs[i];
        fs.name = "core_f" + std::to_string(i);
        fs.computeOps = 2 +
            static_cast<unsigned>(core_rng.range(0, 10));
        fs.loopIters = core_rng.chance(0.25)
            ? static_cast<unsigned>(core_rng.range(2, 10))
            : 0;
        fs.alignment = core_rng.chance(0.5) ? 16 : 32;
        fs.padding =
            static_cast<unsigned>(core_rng.range(0, 12)) & ~3u;
        if (core_rng.chance(0.30)) {
            SwitchSpec sw;
            sw.cases = static_cast<unsigned>(
                1u << core_rng.range(2, 5)); // 4..32
            sw.entrySize = arch == Arch::aarch64
                ? (core_rng.chance(0.5) ? 1 : 2)
                : 4;
            if (sw.cases > 16 && sw.entrySize == 1)
                sw.entrySize = 2;
            fs.switches.push_back(sw);
        } else if (core_rng.chance(0.10) && i + 2 < core) {
            // Direct tail call, always forward (acyclic).
            fs.tailCallTo = static_cast<int>(
                1 + i + 1 +
                core_rng.range(0, core - i - 2));
        }
    }
    for (unsigned i = 0; i < core_hubs; ++i) {
        FuncSpec &fs = core_funcs[i];
        fs.name = "core_h" + std::to_string(i);
        fs.computeOps = 4 +
            static_cast<unsigned>(core_rng.range(0, 8));
        fs.loopIters = core_rng.chance(0.5)
            ? static_cast<unsigned>(core_rng.range(2, 6))
            : 0;
        const unsigned ncallees =
            static_cast<unsigned>(core_rng.range(1, 3));
        for (unsigned c = 0; c < ncallees; ++c) {
            fs.callees.push_back(static_cast<unsigned>(
                1 + core_rng.range(core_hubs, core - 1)));
        }
    }
    // Pin the core block's start: main (spec index 0, app-specific)
    // precedes it in .text, so a page alignment on the first core
    // function absorbs per-binary differences in main's size.
    core_funcs[0].alignment = 4096;

    std::vector<ProgramSpec> corpus;
    for (unsigned b = 0; b < count; ++b) {
        ProgramSpec spec;
        spec.name = "libcommon-app" + std::to_string(b);
        spec.arch = arch;
        // PIE everywhere: on x64 it selects 4-byte table-relative
        // jump-table entries — absolute 8-byte entries would differ
        // per link address and (correctly) defeat sharing.
        spec.pie = true;
        spec.mainIterations = 40;
        spec.baseOffset = std::uint64_t{b} * 0x100000;
        spec.textAlign = 0x10000;
        spec.textSizeFloor = 0x40000;
        spec.funcs.resize(1 + core + tail);
        for (unsigned i = 0; i < core; ++i)
            spec.funcs[1 + i] = core_funcs[i];

        // The app tail: per-binary feature mix, including the data
        // readers and indirect-call traffic the core must avoid.
        Rng rng(0xa9912 + b * 7919);
        const unsigned first_tail = 1 + core;
        const unsigned tail_hubs = 5;
        for (unsigned t = 0; t < tail; ++t) {
            FuncSpec &fs = spec.funcs[first_tail + t];
            fs.name = "app" + std::to_string(b) + "_t" +
                      std::to_string(t);
            fs.computeOps = 2 +
                static_cast<unsigned>(rng.range(0, 8 + b));
            fs.loopIters = rng.chance(0.2)
                ? static_cast<unsigned>(rng.range(2, 8))
                : 0;
            fs.alignment = rng.chance(0.5) ? 16 : 32;
            fs.padding =
                static_cast<unsigned>(rng.range(0, 12)) & ~3u;
            if (t + pool >= tail) {
                fs.addressTaken = true; // callback leaf pool
                continue;
            }
            if (t < tail_hubs) {
                // Tail hubs bridge into the core and the leaf pool.
                for (unsigned c = 0; c < 2; ++c) {
                    fs.callees.push_back(static_cast<unsigned>(
                        1 + rng.range(core_hubs, core - 1)));
                }
                fs.indirectCalls =
                    rng.chance(0.5) ? 1 : 0;
                continue;
            }
            if (rng.chance(0.25)) {
                fs.readsGlobal = true;
                fs.globalSlot =
                    static_cast<unsigned>(rng.range(0, 7));
            }
            if (rng.chance(0.20)) {
                SwitchSpec sw;
                sw.cases = static_cast<unsigned>(
                    1u << rng.range(2, 4));
                sw.entrySize = arch == Arch::aarch64 ? 2 : 4;
                fs.switches.push_back(sw);
            }
        }

        FuncSpec &fmain = spec.funcs[0];
        fmain.name = "main";
        fmain.computeOps = 4 + b; // per-binary main, different bytes
        for (unsigned i = 0; i < core_hubs; ++i)
            fmain.callees.push_back(1 + i);
        for (unsigned t = 0; t < tail_hubs; ++t)
            fmain.callees.push_back(first_tail + t);
        fmain.indirectCalls = 1;
        corpus.push_back(std::move(spec));
    }
    return corpus;
}

ProgramSpec
microProfile(Arch arch, bool pie)
{
    ProgramSpec spec;
    spec.name = "micro";
    spec.arch = arch;
    spec.pie = pie;
    spec.mainIterations = 40;
    spec.features.cppExceptions = true;

    spec.funcs.resize(6);
    FuncSpec &fmain = spec.funcs[0];
    fmain.name = "main";
    fmain.callees = {1, 2};
    fmain.indirectCalls = 1;

    FuncSpec &sw = spec.funcs[1];
    sw.name = "switcher";
    sw.computeOps = 6;
    sw.loopIters = 4;
    sw.callees = {4};
    SwitchSpec s;
    s.cases = 8;
    s.entrySize = arch == Arch::aarch64 ? 2 : 4;
    sw.switches.push_back(s);

    FuncSpec &catcher = spec.funcs[2];
    catcher.name = "catcher";
    catcher.catches = true;
    catcher.callees = {3};
    catcher.comparesFuncPtr = true;

    FuncSpec &thrower = spec.funcs[3];
    thrower.name = "thrower";
    thrower.throwsOnOdd = true;
    thrower.computeOps = 4;

    FuncSpec &worker = spec.funcs[4];
    worker.name = "worker";
    worker.computeOps = 8;
    worker.loopIters = 3;
    worker.indirectTailCall = true;

    FuncSpec &taken = spec.funcs[5];
    taken.name = "taken";
    taken.computeOps = 5;
    taken.addressTaken = true;

    return spec;
}

} // namespace icp
