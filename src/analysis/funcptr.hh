/**
 * @file
 * Function-pointer analysis (§5.2). Identifies function-pointer
 * definition sites — relocation-backed data cells, absolute code
 * immediates, and pc-relative address formation — and forward-slices
 * loads of those cells to catch derived pointers like the
 * entry-plus-one pattern of Listing 1.
 *
 * The safety requirement is precision: rewriting must update every
 * definition or none, so the result carries the evidence needed for
 * the rewriter to decide, and deliberately does not classify values
 * that merely look like pointers after arithmetic (the Go .vtab
 * case), reproducing the paper's func-ptr-mode failure on Go.
 */

#ifndef ICP_ANALYSIS_FUNCPTR_HH
#define ICP_ANALYSIS_FUNCPTR_HH

#include <map>
#include <unordered_map>
#include <vector>

#include "analysis/cfg.hh"

namespace icp
{

struct FuncPtrDef
{
    enum class Kind : std::uint8_t
    {
        dataCell,   ///< 8-byte cell in a data section
        codeImm,    ///< MovImm of a function address (non-PIE)
        codePcRel,  ///< Lea / AdrPage+AddImm / AddisToc+AddImm pair
    };

    Kind kind = Kind::dataCell;

    /** Cell address (dataCell) or first instruction (code kinds). */
    Addr site = 0;

    /** All instructions forming the value, for code kinds. */
    std::vector<Addr> defAddrs;

    /** The function whose entry the pointer references. */
    Addr funcEntry = 0;

    /**
     * Extra displacement applied to the pointer before use, found by
     * forward slicing (Listing 1's +1). The rewritten cell must make
     * relocated(entry + delta) - delta the stored value.
     */
    std::int64_t delta = 0;

    /** Backed by a relocation entry (rewrite via the reloc). */
    bool hasReloc = false;
};

struct FuncPtrAnalysisResult
{
    std::vector<FuncPtrDef> defs;

    /**
     * Relocation-backed cells whose targets are not recognizable
     * function addresses (e.g. Go .vtab obfuscated values). They are
     * left unrewritten; if such a cell is in fact a pointer the
     * func-ptr mode produces a broken binary — detected by the
     * strong test, as in the paper's Docker experiment.
     */
    unsigned unclassifiedRelocs = 0;
};

/**
 * Incremental form of the analysis for drivers that never hold the
 * whole-module CFG (the sharded rewriter): construction runs the
 * module-level passes — relocation-backed cells and, for non-PIE
 * images, the raw data-word scan — against the image's function
 * symbol table; scanFunction() then contributes one function's code
 * scan at a time. Feeding every function in ascending entry order
 * yields a result identical to analyzeFuncPtrs() (which is now a
 * thin wrapper over this class).
 */
class FuncPtrScanner
{
  public:
    explicit FuncPtrScanner(const BinaryImage &image);

    /** Code scan (pass 3) for one function; call in address order. */
    void scanFunction(const Function &func);

    /** Move the accumulated result out; the scanner is done after. */
    FuncPtrAnalysisResult take() { return std::move(result_); }

  private:
    bool isEntry(Addr a) const { return ranges_.count(a) > 0; }
    std::optional<Addr> containing(Addr a) const;

    const BinaryImage &image_;
    bool fixed_;
    std::map<Addr, Addr> ranges_; ///< function entry -> end
    std::unordered_map<Addr, std::size_t> cellDefIdx_;
    FuncPtrAnalysisResult result_;
};

/** Run the analysis over @p cfg. */
FuncPtrAnalysisResult analyzeFuncPtrs(const CfgModule &cfg);

} // namespace icp

#endif // ICP_ANALYSIS_FUNCPTR_HH
