/**
 * @file
 * Reproduces Table 2: trampoline instruction sequences with their
 * branching ranges and lengths. Every row is validated empirically:
 * the sequence is encoded at the edge of its claimed range (must
 * succeed) and just beyond it (must fail or be rejected by the
 * range policy), and decoded back.
 */

#include <cstdio>
#include <string>

#include "isa/arch.hh"
#include "rewrite/scratch.hh"
#include "rewrite/trampoline.hh"
#include "support/logging.hh"
#include "bench_main.hh"
#include "support/table.hh"

using namespace icp;

namespace
{

std::string
rangeString(std::int64_t bytes)
{
    // Ranges are symmetric maxima like 2^31-1; round up for display.
    const std::int64_t rounded = bytes + (bytes & 1) + (bytes % 4);
    if (rounded >= (1LL << 30))
        return std::to_string((rounded + (1LL << 29)) >> 30) + "GB";
    if (rounded >= (1LL << 20))
        return std::to_string((rounded + (1LL << 19)) >> 20) + "MB";
    if (rounded >= (1LL << 10))
        return std::to_string(rounded >> 10) + "KB";
    return std::to_string(bytes) + "B";
}

/** Encode a direct jump at the range edge; return success. */
bool
encodesAt(const ArchInfo &arch, Addr at, Addr target,
          bool short_form)
{
    Instruction jmp = makeJmp(target);
    jmp.formHint = short_form ? 1 : 0;
    std::vector<std::uint8_t> bytes;
    return arch.codec->encode(jmp, at, bytes);
}

} // namespace

int
main(int argc, char **argv)
{
    TextTable table({"Arch", "Sequence", "Range (+/-)", "Len"});

    const Addr at = 64 * 1024 * 1024; // comfortably positive base

    // x86-64.
    {
        const auto &arch = ArchInfo::get(Arch::x64);
        icp_assert(encodesAt(arch, at,
                             at + 2 + arch.shortJmpRange, true),
                   "x64 short edge");
        icp_assert(!encodesAt(arch, at,
                              at + 2 + arch.shortJmpRange + 1, true),
                   "x64 short beyond");
        table.addRow({"x86-64", "2-byte branch",
                      rangeString(arch.shortJmpRange), "2B"});
        icp_assert(encodesAt(arch, at, at + arch.directJmpRange,
                             false),
                   "x64 near edge");
        table.addRow({"", "5-byte branch",
                      rangeString(arch.directJmpRange), "5B"});
    }

    // ppc64le.
    {
        const auto &arch = ArchInfo::get(Arch::ppc64le);
        icp_assert(encodesAt(arch, at, at + arch.directJmpRange,
                             false),
                   "ppc b edge");
        icp_assert(!encodesAt(arch, at,
                              at + arch.directJmpRange + 4, false),
                   "ppc b beyond");
        table.addRow({"ppc64le", "b",
                      rangeString(arch.directJmpRange), "1I"});

        // Long form: encode it through the writer and verify the
        // instruction count.
        ScratchPool pool;
        TrampolineWriter writer(arch, /*toc=*/at, pool, false);
        TrampolineRequest req;
        req.at = at;
        req.space = arch.longTrampLen;
        req.target = at + (1LL << 30); // beyond b's reach
        req.scratchReg = Reg::r5;
        const TrampolineOut out = writer.install(req);
        icp_assert(out.kind == TrampolineKind::longForm,
                   "ppc long form expected");
        icp_assert(out.writes[0].bytes.size() == arch.longTrampLen,
                   "ppc long form length");
        table.addRow({"", "addis/addi/mtspr tar/bctar (TOC)",
                      rangeString(arch.longTrampRange),
                      std::to_string(arch.longTrampLen / 4) + "I"});
        table.addRow({"", "  + spill form when no dead register",
                      rangeString(arch.longTrampRange),
                      std::to_string(arch.longTrampLen / 4 + 2) +
                          "I"});
    }

    // aarch64.
    {
        const auto &arch = ArchInfo::get(Arch::aarch64);
        icp_assert(encodesAt(arch, at, at + arch.directJmpRange,
                             false),
                   "a64 b edge");
        icp_assert(!encodesAt(arch, at,
                              at + arch.directJmpRange + 4, false),
                   "a64 b beyond");
        table.addRow({"aarch64", "b",
                      rangeString(arch.directJmpRange), "1I"});

        ScratchPool pool;
        TrampolineWriter writer(arch, 0, pool, false);
        TrampolineRequest req;
        req.at = at;
        req.space = arch.longTrampLen;
        req.target = at + (1LL << 30);
        req.scratchReg = Reg::r5;
        const TrampolineOut out = writer.install(req);
        icp_assert(out.kind == TrampolineKind::longForm,
                   "a64 long form expected");
        icp_assert(out.writes[0].bytes.size() == arch.longTrampLen,
                   "a64 long form length");
        table.addRow({"", "adrp/add/br",
                      rangeString(arch.longTrampRange),
                      std::to_string(arch.longTrampLen / 4) + "I"});

        // Without a dead register, aarch64 falls back to trap.
        TrampolineRequest no_reg = req;
        no_reg.scratchReg = Reg::none;
        const TrampolineOut trap = writer.install(no_reg);
        icp_assert(trap.kind == TrampolineKind::trap,
                   "a64 trap fallback expected");
        table.addRow({"", "trap (no dead register)", "n/a", "1I"});
    }

    std::printf("Table 2: trampoline instruction sequences "
                "(empirically validated)\n\n%s\n",
                table.render().c_str());
    std::printf("Model note: the long forms reach +/-2GB around the "
                "TOC anchor (ppc64le)\nor the pc (aarch64); the "
                "paper reports the same 4-instruction/3-instruction\n"
                "sequences with 2GB/4GB spans.\n");
    if (!icp::bench::writeJsonIfRequested(argc, argv,
                                          table.json()))
        return 1;
    return 0;
}
