#include "rewrite/dynamic.hh"

#include <algorithm>

#include "rewrite/rewriter.hh"
#include "support/logging.hh"

namespace icp
{

RewriteResult
attachAndPatch(Process &process, const BinaryImage &original,
               RewriteOptions options)
{
    icp_assert(process.module.image == &original,
               "process was not loaded from this image");

    // In-flight pcs and stack return addresses keep pointing at
    // original code; it must stay executable.
    options.clobberOriginal = false;

    RewriteResult result = rewriteBinary(original, options);
    if (!result.ok)
        return result;

    // Map the new sections (.instr, .newrodata, .ra_map, .trap_map,
    // moved dynamic sections) into the live process, and apply only
    // the bytes the rewriter changed in pre-existing sections
    // (trampolines, patched pointer cells). Blanket copies would
    // clobber runtime state — relocated pointer values and data the
    // program has written since startup.
    for (const auto &sec : result.image.sections) {
        if (!sec.loadable)
            continue;
        const Section *before = nullptr;
        for (const auto &orig : original.sections) {
            if (orig.name == sec.name && orig.addr == sec.addr) {
                before = &orig;
                break;
            }
        }
        const Addr base = process.module.toLoaded(sec.addr);
        if (!before) {
            process.mem.map(base, sec.memSize);
            if (!sec.bytes.empty())
                process.mem.writeBlock(base, sec.bytes);
            continue;
        }
        const std::size_t n =
            std::min(sec.bytes.size(), before->bytes.size());
        std::size_t i = 0;
        while (i < n) {
            if (sec.bytes[i] == before->bytes[i]) {
                ++i;
                continue;
            }
            std::size_t j = i;
            while (j < n && sec.bytes[j] != before->bytes[j])
                ++j;
            process.mem.writeBlock(
                base + i,
                {sec.bytes.begin() + static_cast<std::ptrdiff_t>(i),
                 sec.bytes.begin() + static_cast<std::ptrdiff_t>(j)});
            i = j;
        }
        if (sec.bytes.size() > before->bytes.size()) {
            process.mem.writeBlock(
                base + n,
                {sec.bytes.begin() + static_cast<std::ptrdiff_t>(n),
                 sec.bytes.end()});
        }
    }

    // PIE: apply the relocations of the rewritten image that changed
    // (func-ptr mode rewrites addends). Re-applying all of them is
    // idempotent for the unchanged ones but would clobber values the
    // running program may have overwritten; only pointer cells the
    // rewriter owns are refreshed.
    if (options.mode == RewriteMode::funcPtr) {
        for (std::size_t i = 0; i < result.image.relocs.size() &&
                                i < original.relocs.size();
             ++i) {
            const auto &now = result.image.relocs[i];
            const auto &before = original.relocs[i];
            if (now.site != before.site ||
                now.addend == before.addend)
                continue;
            const Addr site = process.module.toLoaded(now.site);
            process.mem.write(
                site, 8,
                static_cast<std::uint64_t>(now.addend +
                                           process.module.slide));
        }
    }

    return result;
}

} // namespace icp
