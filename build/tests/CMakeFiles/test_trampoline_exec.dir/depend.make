# Empty dependencies file for test_trampoline_exec.
# This may be replaced when dependencies are built.
