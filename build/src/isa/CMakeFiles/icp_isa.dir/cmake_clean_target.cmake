file(REMOVE_RECURSE
  "libicp_isa.a"
)
