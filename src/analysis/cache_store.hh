/**
 * @file
 * On-disk persistence of the AnalysisCache: a versioned, per-entry
 * checksummed binary serialization of memoized per-function analysis
 * results (CFG blocks/edges with decoded instructions, jump-table
 * solutions, liveness summaries), keyed by Function::cacheKey and
 * tagged with the ISA they were built for. This turns the warm-cache
 * speedup of repeat rewrites into a cross-invocation property — the
 * same shape as Dyninst's serialized parse data — and gives CI a
 * stable artifact to cache between runs.
 *
 * Robustness contract: loading never crashes. A missing file, a
 * foreign magic, a version mismatch, a flipped payload byte, a
 * truncated tail, or a wrong-ISA entry each degrade to an empty or
 * partial load, with one structured cache-* issue per problem (the
 * same shape as the SBF container's sbf-* diagnostics). Cache keys
 * are content hashes, so a surviving entry is usable by construction
 * and a dropped entry only costs re-analysis.
 *
 * File layout (all integers little-endian):
 *
 *   u32 magic   "ICPC"
 *   u32 version cache_file_version (bump on any shape change)
 *   u32 entryCount
 *   entryCount x {
 *     u8  kind      1 = function CFG, 2 = liveness summary
 *     u8  arch      Arch enum value
 *     u64 key       Function::cacheKey the entry memoizes
 *     u32 payloadLen
 *     u64 payloadHash   FNV-1a over the payload bytes
 *     u8  payload[payloadLen]
 *   }
 *
 * Invalidation needs no explicit rule: the key already covers the
 * function bytes, the analysis options, and every non-executable
 * loadable section (see imageCacheSeed), so a stale entry's key is
 * simply never looked up again.
 */

#ifndef ICP_ANALYSIS_CACHE_STORE_HH
#define ICP_ANALYSIS_CACHE_STORE_HH

#include <cstdint>
#include <string>
#include <vector>

namespace icp
{

constexpr std::uint32_t cache_file_magic = 0x43504349; // "ICPC"
constexpr std::uint32_t cache_file_version = 1;

/** One structured problem found while loading a cache file. */
struct CacheFileIssue
{
    std::string rule;       ///< "cache-magic", "cache-version", ...
    std::size_t offset = 0; ///< byte offset into the file
    std::string message;
};

/** Outcome of AnalysisCache::load(): what survived, what did not. */
struct CacheLoadReport
{
    /** File existed and was readable (false is not an error). */
    bool fileRead = false;

    unsigned loadedFunctions = 0;
    unsigned loadedLiveness = 0;

    /** Entries present in the file but rejected (one issue each). */
    unsigned droppedEntries = 0;

    /** Keys already in memory; the in-memory entry won. */
    unsigned skippedExisting = 0;

    std::vector<CacheFileIssue> issues;

    bool clean() const { return issues.empty(); }

    unsigned
    loadedEntries() const
    {
        return loadedFunctions + loadedLiveness;
    }
};

} // namespace icp

#endif // ICP_ANALYSIS_CACHE_STORE_HH
