/**
 * @file
 * The synthetic compiler: lowers a ProgramSpec to a complete SBF
 * binary for any of the three ISAs, reproducing the code-generation
 * idioms the paper's analyses are built around — per-arch jump-table
 * patterns (PIC-relative tables on x64, code-embedded tables on
 * ppc64le, 1/2-byte anchor-relative tables on aarch64),
 * function-pointer materialization through relocations / pc-relative
 * addressing / code immediates, call-frame conventions with
 * .eh_frame records, Go runtime constructs, and inter-function nop
 * padding.
 */

#ifndef ICP_CODEGEN_COMPILER_HH
#define ICP_CODEGEN_COMPILER_HH

#include "binfmt/image.hh"
#include "codegen/spec.hh"

namespace icp
{

/** Compile @p spec into a binary image. */
BinaryImage compileProgram(const ProgramSpec &spec);

/**
 * Calling convention constants shared with the rewriter and the
 * machine-level verification:
 *  - r1 carries the argument, r0 the return value;
 *  - r8/r9 are callee-saved and spilled to the two lowest frame
 *    slots;
 *  - frames are frame_bytes large; x64 keeps the return address at
 *    [sp + frame_bytes], the fixed ISAs at [sp + frame_bytes - 8].
 */
inline constexpr std::uint32_t frame_bytes = 48;

/** Offset of the Go-ABI stack argument relative to callee-entry sp. */
inline constexpr unsigned go_arg_slot_lr = 1;  ///< [sp + 8] (fixed)
inline constexpr unsigned go_arg_slot_x64 = 2; ///< [sp + 16]

} // namespace icp

#endif // ICP_CODEGEN_COMPILER_HH
