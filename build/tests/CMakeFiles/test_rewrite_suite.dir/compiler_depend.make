# Empty compiler generated dependencies file for test_rewrite_suite.
# This may be replaced when dependencies are built.
