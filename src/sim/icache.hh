/**
 * @file
 * A small set-associative instruction-cache model. Its only job is
 * to make the ping-pong between original code (.text trampolines)
 * and relocated code (.instr) cost real cycles, which is the
 * dominant overhead source for patching-based rewriting (§3).
 */

#ifndef ICP_SIM_ICACHE_HH
#define ICP_SIM_ICACHE_HH

#include <cstdint>
#include <vector>

#include "support/types.hh"

namespace icp
{

class ICache
{
  public:
    struct Config
    {
        unsigned sizeBytes = 32 * 1024;
        unsigned lineBytes = 64;
        unsigned ways = 4;
    };

    explicit ICache(const Config &cfg);

    /** Touch the line containing @p addr; true on miss. */
    bool access(Addr addr);

    void reset();

    std::uint64_t accesses() const { return accesses_; }
    std::uint64_t misses() const { return misses_; }

  private:
    struct Way
    {
        std::uint64_t tag = ~0ULL;
        std::uint64_t lastUse = 0;
    };

    Config cfg_;
    unsigned numSets_;
    unsigned lineShift_;
    std::vector<Way> ways_; // numSets_ * cfg_.ways
    std::uint64_t tick_ = 0;
    std::uint64_t accesses_ = 0;
    std::uint64_t misses_ = 0;
};

} // namespace icp

#endif // ICP_SIM_ICACHE_HH
