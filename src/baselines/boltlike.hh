/**
 * @file
 * The BOLT-like binary optimizer baseline for the §8.3 comparison:
 * function and basic-block reordering. Function reordering requires
 * link-time relocations (the -Wl,-q analog) and refuses otherwise,
 * even for PIE — exactly the behaviour the paper observed. Block
 * reordering emits corrupted binaries for the workloads whose
 * metadata the real tool mishandled (modeled on the paper's 10/19
 * failures: binaries with C++ exceptions or Fortran components).
 */

#ifndef ICP_BASELINES_BOLTLIKE_HH
#define ICP_BASELINES_BOLTLIKE_HH

#include <string>

#include "binfmt/image.hh"

namespace icp
{

enum class BoltOperation : std::uint8_t
{
    reorderFunctions,
    reorderBlocks,
};

struct BoltOutcome
{
    bool ok = false;        ///< a binary was produced
    bool corrupted = false; ///< produced but unloadable/broken
    std::string error;
    BinaryImage image;

    double
    sizeIncrease(const BinaryImage &original) const
    {
        return static_cast<double>(image.loadedSize()) /
                   static_cast<double>(original.loadedSize()) -
               1.0;
    }
};

BoltOutcome boltRewrite(const BinaryImage &input, BoltOperation op);

} // namespace icp

#endif // ICP_BASELINES_BOLTLIKE_HH
