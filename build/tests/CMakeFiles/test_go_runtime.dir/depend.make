# Empty dependencies file for test_go_runtime.
# This may be replaced when dependencies are built.
