/**
 * @file
 * Shared command-line handling for the benchmark executables. Every
 * bench accepts `--json <path>` (or `--json=<path>`) and writes its
 * machine-readable results there in addition to the console tables.
 *
 * Handwritten benches call writeJsonIfRequested() with a JSON string
 * (usually TextTable::json()); google-benchmark benches use
 * ICP_BENCH_MAIN(), which translates --json into the library's
 * --benchmark_out/--benchmark_out_format flags before Initialize().
 */

#ifndef ICP_BENCH_BENCH_MAIN_HH
#define ICP_BENCH_BENCH_MAIN_HH

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

namespace icp::bench
{

/** The --json argument's path, or "" when absent. */
inline std::string
jsonPathFromArgs(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--json" && i + 1 < argc)
            return argv[i + 1];
        if (arg.rfind("--json=", 0) == 0)
            return arg.substr(7);
    }
    return {};
}

/**
 * Write @p json to the --json path when one was given. Returns
 * false only on a write failure (no --json is success).
 */
inline bool
writeJsonIfRequested(int argc, char **argv, const std::string &json)
{
    const std::string path = jsonPathFromArgs(argc, argv);
    if (path.empty())
        return true;
    std::ofstream out(path, std::ios::trunc);
    if (!out) {
        std::fprintf(stderr, "cannot write %s\n", path.c_str());
        return false;
    }
    out << json;
    return static_cast<bool>(out);
}

/**
 * Rewrite argv for google-benchmark: --json <path> becomes
 * --benchmark_out=<path> --benchmark_out_format=json. @p storage
 * owns the strings the returned pointers reference.
 */
inline std::vector<char *>
translateJsonArgs(int argc, char **argv,
                  std::vector<std::string> &storage)
{
    storage.clear();
    storage.reserve(static_cast<std::size_t>(argc) + 1);
    storage.emplace_back(argv[0]);
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        std::string path;
        if (arg == "--json" && i + 1 < argc)
            path = argv[++i];
        else if (arg.rfind("--json=", 0) == 0)
            path = arg.substr(7);
        if (!path.empty()) {
            storage.push_back("--benchmark_out=" + path);
            storage.emplace_back("--benchmark_out_format=json");
        } else {
            storage.push_back(arg);
        }
    }
    std::vector<char *> out;
    out.reserve(storage.size());
    for (std::string &s : storage)
        out.push_back(s.data());
    return out;
}

/** Builds `{"name": <value>, ...}` from pre-rendered JSON values. */
class JsonSections
{
  public:
    void
    add(const std::string &name, const std::string &json_value)
    {
        if (!body_.empty())
            body_ += ",\n";
        body_ += "\"" + name + "\": " + json_value;
    }

    std::string
    str() const
    {
        return "{\n" + body_ + "}\n";
    }

  private:
    std::string body_;
};

} // namespace icp::bench

/** Drop-in BENCHMARK_MAIN() replacement that understands --json. */
#define ICP_BENCH_MAIN()                                             \
    int main(int argc, char **argv)                                  \
    {                                                                \
        std::vector<std::string> storage;                            \
        std::vector<char *> args =                                   \
            ::icp::bench::translateJsonArgs(argc, argv, storage);    \
        int n = static_cast<int>(args.size());                       \
        ::benchmark::Initialize(&n, args.data());                    \
        if (::benchmark::ReportUnrecognizedArguments(n,              \
                                                     args.data()))   \
            return 1;                                                \
        ::benchmark::RunSpecifiedBenchmarks();                       \
        ::benchmark::Shutdown();                                     \
        return 0;                                                    \
    }                                                                \
    int main(int, char **)

#endif // ICP_BENCH_BENCH_MAIN_HH
