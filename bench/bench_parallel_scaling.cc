/**
 * @file
 * Scaling benchmark of the parallel per-function pipeline: full
 * rewrites of the two largest workloads at 1/2/4/8 threads, each
 * under five cache regimes — cold (no prior state), warm-memory
 * (in-process AnalysisCache primed), cold-disk (--cache-file set but
 * the file does not exist yet: pays the save), warm-disk (fresh
 * process, populated cache file: pays load + save, reuses analysis),
 * and warm-disk-delta (fresh process, file primed from a
 * one-instruction-edited binary: one analysis miss, one-entry delta
 * append — the paper's incremental steady state) — reporting wall
 * time, the cache file size, and the per-stage timer breakdown,
 * including the cache.load/cache.save stages. A warm_datadeps
 * section compares the three RewriteSession::loadInput edit classes
 * (unread-data edit: splice everything; code edit: re-emit one
 * function; relocation-site edit: conservative full reset). A serve
 * section drives an in-process `icp serve` daemon through a
 * one-function-edit rewrite loop and compares its per-request
 * latency against forking the real `icp rewrite --cache-file` binary
 * per edit — the process startup + cache load the daemon exists to
 * amortize. A cross_binary section rewrites a libcommon corpus
 * (binaries sharing a byte-identical static-lib core at shifted
 * link addresses) through one shared cache file and reports the
 * content-addressed cross-binary hit rate, rebase cost, and wall
 * vs each binary's cold baseline. `--json <path>` writes the
 * results (BENCH_parallel.json
 * in the repository is a committed baseline); `--cache-file <path>`
 * relocates the disk regimes' cache file from its /tmp default;
 * `--icp <path>` names the CLI binary for the serve section's
 * one-shot baseline (default tools/icp, resolved from the working
 * directory — i.e. run from the build tree).
 *
 * Speedups are whatever the host delivers: on a single-core
 * container the thread counts verify determinism and overhead
 * rather than demonstrating parallel speedup.
 */

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <fcntl.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>

#include "analysis/cache.hh"
#include "analysis/datadeps.hh"
#include "bench_main.hh"
#include "binfmt/stream_writer.hh"
#include "codegen/compiler.hh"
#include "codegen/workloads.hh"
#include "rewrite/rewriter.hh"
#include "rewrite/session.hh"
#include "serve/protocol.hh"
#include "serve/server.hh"
#include "support/stats.hh"
#include "support/table.hh"

using namespace icp;

namespace
{

constexpr unsigned reps = 3;

/** The disk-regime cache file; overridable with --cache-file. */
std::string cache_file = "/tmp/icp_bench_parallel.icpc";

/** The CLI binary the serve section's one-shot baseline forks;
 *  overridable with --icp. The default resolves from the build tree
 *  (the bench's usual working directory). */
std::string icp_binary = "tools/icp";

double
rewriteWallMs(const BinaryImage &img, unsigned threads,
              const std::string &cache_path = "")
{
    RewriteOptions opts;
    opts.mode = RewriteMode::funcPtr;
    opts.instrumentation.countFunctionEntries = true;
    opts.threads = threads;
    opts.cachePath = cache_path;
    const auto t0 = std::chrono::steady_clock::now();
    const RewriteResult rw = rewriteBinary(img, opts);
    const auto t1 = std::chrono::steady_clock::now();
    if (!rw.ok) {
        std::fprintf(stderr, "rewrite failed: %s\n",
                     rw.failReason.c_str());
        std::exit(1);
    }
    return std::chrono::duration<double, std::milli>(t1 - t0)
        .count();
}

enum class CacheMode
{
    cold,       ///< no prior state at all
    warmMemory, ///< in-process AnalysisCache primed
    coldDisk,   ///< --cache-file set, file absent (pays the save)
    warmDisk,   ///< fresh process + populated file (load + reuse)
    /** Fresh process + file primed from a one-instruction-edited
     *  binary: one analysis miss, one-entry delta append — the
     *  incremental-patching steady state. */
    warmDiskDelta,
};

const char *
cacheModeName(CacheMode mode)
{
    switch (mode) {
      case CacheMode::cold: return "cold";
      case CacheMode::warmMemory: return "warm-memory";
      case CacheMode::coldDisk: return "cold-disk";
      case CacheMode::warmDisk: return "warm-disk";
      case CacheMode::warmDiskDelta: return "warm-disk-delta";
    }
    return "?";
}

std::uint64_t
fileBytes(const std::string &path)
{
    std::ifstream in(path, std::ios::binary | std::ios::ate);
    return in ? static_cast<std::uint64_t>(in.tellg()) : 0;
}

/**
 * Flip the low bit of one AddImm immediate, in place (same encoded
 * length), so exactly one function's cache key changes. Mirrors the
 * dirty-function probe in test_session.cc.
 */
bool
mutateOneImmediate(BinaryImage &img)
{
    const Codec &codec = *img.archInfo().codec;
    for (const Symbol *sym : img.functionSymbols()) {
        std::vector<std::uint8_t> body;
        if (!img.readBytes(sym->addr, sym->size, body))
            continue;
        Addr addr = sym->addr;
        std::size_t off = 0;
        while (off < body.size()) {
            Instruction in;
            if (!codec.decode(body.data() + off, body.size() - off,
                              addr, in) ||
                in.length == 0)
                break;
            if (in.op == Opcode::AddImm && in.imm > 1) {
                Instruction edit = in;
                edit.imm = in.imm ^ 1;
                std::vector<std::uint8_t> enc;
                if (codec.encode(edit, addr, enc) &&
                    enc.size() == in.length)
                    return img.writeBytes(addr, enc);
            }
            off += in.length;
            addr += in.length;
        }
    }
    return false;
}

struct Run
{
    unsigned threads = 0;
    CacheMode mode = CacheMode::cold;
    double wallMs = 0.0;
    std::string stages; ///< StageTimers JSON of the best rep
    std::uint64_t cacheFileBytes = 0; ///< file size after the run
};

/**
 * Best-of-reps wall time. The disk modes clear the in-memory cache
 * before every rep (each rep models a fresh process); warm-memory
 * primes once and keeps it; cold clears everything every rep.
 */
Run
measure(const BinaryImage &img, unsigned threads, CacheMode mode)
{
    Run run;
    run.threads = threads;
    run.mode = mode;
    if (mode == CacheMode::warmMemory) {
        AnalysisCache::global().clear();
        rewriteWallMs(img, threads);
    }
    if (mode == CacheMode::warmDisk) {
        AnalysisCache::global().clear();
        std::remove(cache_file.c_str());
        rewriteWallMs(img, threads, cache_file); // populate the file
    }
    BinaryImage edited;
    if (mode == CacheMode::warmDiskDelta) {
        edited = img;
        if (!mutateOneImmediate(edited)) {
            std::fprintf(stderr,
                         "no in-place-mutable immediate found\n");
            std::exit(1);
        }
    }
    const bool disk = mode == CacheMode::coldDisk ||
                      mode == CacheMode::warmDisk ||
                      mode == CacheMode::warmDiskDelta;
    for (unsigned r = 0; r < reps; ++r) {
        if (mode == CacheMode::warmDiskDelta) {
            // Re-prime from the edited binary every rep so the timed
            // run always sees exactly one stale entry (its own delta
            // append would otherwise warm the file fully).
            AnalysisCache::global().clear();
            std::remove(cache_file.c_str());
            rewriteWallMs(edited, threads, cache_file);
        }
        if (mode != CacheMode::warmMemory)
            AnalysisCache::global().clear();
        if (mode == CacheMode::coldDisk)
            std::remove(cache_file.c_str());
        StageTimers::global().reset();
        const double ms =
            rewriteWallMs(img, threads, disk ? cache_file : "");
        if (r == 0 || ms < run.wallMs) {
            run.wallMs = ms;
            run.stages = StageTimers::global().json();
            run.cacheFileBytes = disk ? fileBytes(cache_file) : 0;
        }
    }
    return run;
}

std::string
shardCountersJson(const std::vector<ShardCounters> &shards)
{
    std::ostringstream out;
    out << "[";
    for (std::size_t i = 0; i < shards.size(); ++i) {
        const ShardCounters &sc = shards[i];
        out << (i ? ", " : "") << "{\"lo\": " << sc.lo
            << ", \"hi\": " << sc.hi
            << ", \"functions\": " << sc.functions
            << ", \"instrumented\": " << sc.instrumented
            << ", \"blocks\": " << sc.blocks
            << ", \"insns\": " << sc.insns
            << ", \"worker_attempts\": " << sc.workerAttempts
            << ", \"degraded\": "
            << (sc.degraded ? "true" : "false")
            << ", \"worker_peak_rss_bytes\": "
            << sc.workerPeakRssBytes << "}";
    }
    out << "]";
    return out.str();
}

/**
 * One measured run of the chromium corpus: classic materializing
 * (shards == 0) or sharded streaming, each in a forked child so
 * wait4's ru_maxrss gives the run's true peak RSS without the
 * bench's own footprint.
 */
struct ChromiumRun
{
    unsigned shards = 0;
    double wallMs = 0.0;
    std::uint64_t peakRssBytes = 0;  ///< child ru_maxrss
    std::uint64_t outputBytes = 0;   ///< rewritten .sbf size
    std::string stages;              ///< StageTimers JSON
    std::string shardCounters = "[]";
};

/**
 * Child body for one chromium run. Loads the corpus from @p sbf_path
 * (the parent never materializes it: inherited RSS stays tiny),
 * rewrites in jt mode, and writes wall/output/stages/counters as
 * `key=value` lines to @p report_path. Returns the exit status.
 */
int
chromiumChildBody(const std::string &sbf_path,
                  const std::string &report_path,
                  const std::string &out_path, unsigned shards)
{
    std::ifstream in(sbf_path, std::ios::binary);
    std::vector<std::uint8_t> raw(
        (std::istreambuf_iterator<char>(in)),
        std::istreambuf_iterator<char>());
    if (raw.empty())
        return 2;
    const BinaryImage img = BinaryImage::deserialize(raw);
    raw.clear();
    raw.shrink_to_fit();

    RewriteOptions opts;
    opts.mode = RewriteMode::jt;
    opts.threads = 1;
    opts.shards = shards;
    opts.lint = false;

    StageTimers::global().reset();
    const auto t0 = std::chrono::steady_clock::now();
    RewriteResult rw;
    if (shards == 0) {
        rw = rewriteBinary(img, opts);
        if (rw.ok) {
            const auto bytes = rw.image.serialize();
            std::ofstream out(out_path, std::ios::binary);
            out.write(reinterpret_cast<const char *>(bytes.data()),
                      static_cast<std::streamsize>(bytes.size()));
        }
    } else {
        std::FILE *f = std::fopen(out_path.c_str(), "wb");
        if (!f)
            return 2;
        FileSink sink(f);
        rw = rewriteBinarySharded(img, opts, sink);
        std::fclose(f);
    }
    const auto t1 = std::chrono::steady_clock::now();
    if (!rw.ok) {
        std::fprintf(stderr, "chromium rewrite failed: %s\n",
                     rw.failReason.c_str());
        return 2;
    }

    std::ofstream report(report_path, std::ios::trunc);
    report << "wall_ms="
           << std::chrono::duration<double, std::milli>(t1 - t0)
                  .count()
           << "\noutput_bytes=" << fileBytes(out_path)
           << "\nstages=" << StageTimers::global().json()
           << "\nshard_counters="
           << shardCountersJson(rw.stats.shards) << "\n";
    return report ? 0 : 2;
}

/**
 * The chromium-corpus memory-ceiling regime: one child per shard
 * count, shards=0 being the classic materializing baseline the
 * streaming path's RSS is judged against.
 */
void
chromiumShardedSection(icp::bench::JsonSections &sections)
{
    const std::string dir = "/tmp/icp_bench_chromium." +
                            std::to_string(getpid());
    const std::string sbf_path = dir + ".sbf";
    const std::string out_path = dir + ".out.sbf";
    const std::string report_path = dir + ".report";

    // Compile in a throwaway child so the bench process never holds
    // the corpus (forked measurement children would inherit it).
    {
        const pid_t pid = fork();
        if (pid == 0) {
            const BinaryImage img =
                compileProgram(chromiumProfile());
            const auto bytes = img.serialize();
            std::ofstream out(sbf_path, std::ios::binary);
            out.write(reinterpret_cast<const char *>(bytes.data()),
                      static_cast<std::streamsize>(bytes.size()));
            _exit(out ? 0 : 2);
        }
        int status = 0;
        waitpid(pid, &status, 0);
        if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
            std::fprintf(stderr, "chromium compile failed\n");
            std::exit(1);
        }
    }

    std::vector<ChromiumRun> runs;
    for (unsigned shards : {0u, 1u, 2u, 4u}) {
        const pid_t pid = fork();
        if (pid == 0)
            _exit(chromiumChildBody(sbf_path, report_path, out_path,
                                    shards));
        int status = 0;
        struct rusage ru = {};
        wait4(pid, &status, 0, &ru);
        if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
            std::fprintf(stderr, "chromium run failed (shards=%u)\n",
                         shards);
            std::exit(1);
        }
        ChromiumRun run;
        run.shards = shards;
        run.peakRssBytes =
            static_cast<std::uint64_t>(ru.ru_maxrss) * 1024;
        std::ifstream report(report_path);
        std::string line;
        while (std::getline(report, line)) {
            const auto eq = line.find('=');
            if (eq == std::string::npos)
                continue;
            const std::string key = line.substr(0, eq);
            const std::string val = line.substr(eq + 1);
            if (key == "wall_ms")
                run.wallMs = std::stod(val);
            else if (key == "output_bytes")
                run.outputBytes = std::stoull(val);
            else if (key == "stages")
                run.stages = val;
            else if (key == "shard_counters")
                run.shardCounters = val;
        }
        runs.push_back(std::move(run));
    }
    std::remove(sbf_path.c_str());
    std::remove(out_path.c_str());
    std::remove(report_path.c_str());

    const double base_rss =
        static_cast<double>(runs.front().peakRssBytes);
    TextTable table({"Shards", "Wall ms", "Peak RSS MiB",
                     "RSS vs classic", "Output MiB"});
    std::ostringstream json;
    json << "[";
    for (std::size_t i = 0; i < runs.size(); ++i) {
        const ChromiumRun &r = runs[i];
        char rss[32], ratio[32], out_mib[32];
        std::snprintf(rss, sizeof(rss), "%.1f",
                      static_cast<double>(r.peakRssBytes) /
                          (1024.0 * 1024.0));
        std::snprintf(ratio, sizeof(ratio), "%.2fx",
                      static_cast<double>(r.peakRssBytes) /
                          base_rss);
        std::snprintf(out_mib, sizeof(out_mib), "%.1f",
                      static_cast<double>(r.outputBytes) /
                          (1024.0 * 1024.0));
        table.addRow({r.shards ? std::to_string(r.shards)
                               : "0 (classic)",
                      std::to_string(r.wallMs), rss,
                      r.shards ? ratio : "-", out_mib});
        json << (i ? ",\n" : "\n")
             << "    {\"shards\": " << r.shards
             << ", \"wall_ms\": " << r.wallMs
             << ", \"peak_rss_bytes\": " << r.peakRssBytes
             << ", \"output_bytes\": " << r.outputBytes
             << ", \"shard_counters\": " << r.shardCounters
             << ", \"stages\": " << r.stages << "}";
    }
    json << "\n  ]";
    std::printf("chromium corpus, jt mode (forked runs, RSS via "
                "wait4)\n%s\n",
                table.render().c_str());
    sections.add("chromium_sharded", json.str());
}

/**
 * The warm-session regime: a full rewrite, then a one-instruction
 * edit re-rewritten through RewriteSession::loadInput. The one-shot
 * warm-memory relocation cost is irreducible (every function's
 * bytes must re-emit); session reuse is the path that shrinks it —
 * only the dirty function re-emits, the rest splice.
 */
void
warmSessionSection(icp::bench::JsonSections &sections)
{
    AnalysisCache::global().clear();
    BinaryImage img = compileProgram(libxulProfile());
    BinaryImage edited = img;
    if (!mutateOneImmediate(edited)) {
        std::fprintf(stderr, "no in-place-mutable immediate found\n");
        std::exit(1);
    }

    RewriteOptions opts;
    opts.mode = RewriteMode::funcPtr;
    opts.instrumentation.countFunctionEntries = true;
    opts.threads = 1;
    // lint stays on: the recorded manifest is what the selective
    // re-rewrite splices previous bytes from.

    RewriteSession session(std::move(img));

    StageTimers::global().reset();
    auto t0 = std::chrono::steady_clock::now();
    const RewriteResult &full = session.rewrite(opts);
    auto t1 = std::chrono::steady_clock::now();
    if (!full.ok) {
        std::fprintf(stderr, "session rewrite failed: %s\n",
                     full.failReason.c_str());
        std::exit(1);
    }
    const double full_ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    const double full_reloc_ms =
        static_cast<double>(
            StageTimers::global().nanos(Stage::relocate)) /
        1e6;
    const std::string full_stages = StageTimers::global().json();
    const unsigned full_emitted = full.stats.relocEmittedFunctions;

    StageTimers::global().reset();
    t0 = std::chrono::steady_clock::now();
    const RewriteSession::LoadOutcome outcome =
        session.loadInput(std::move(edited));
    t1 = std::chrono::steady_clock::now();
    const double delta_ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    const double delta_reloc_ms =
        static_cast<double>(
            StageTimers::global().nanos(Stage::relocate)) /
        1e6;
    const std::string delta_stages = StageTimers::global().json();
    if (!outcome.incremental || !session.lastResult().ok) {
        std::fprintf(stderr, "session delta was not incremental\n");
        std::exit(1);
    }
    const RewriteResult &delta = session.lastResult();

    TextTable table({"Pass", "Wall ms", "Relocation ms", "Emitted",
                     "Spliced"});
    table.addRow({"full", std::to_string(full_ms),
                  std::to_string(full_reloc_ms),
                  std::to_string(full_emitted), "0"});
    table.addRow({"1-insn delta", std::to_string(delta_ms),
                  std::to_string(delta_reloc_ms),
                  std::to_string(delta.stats.relocEmittedFunctions),
                  std::to_string(delta.stats.relocReusedFunctions)});
    std::printf("libxul warm session (RewriteSession::loadInput, "
                "one AddImm edit)\n%s\n",
                table.render().c_str());

    std::ostringstream json;
    json << "{\n    \"full\": {\"wall_ms\": " << full_ms
         << ", \"relocation_ms\": " << full_reloc_ms
         << ", \"emitted_functions\": " << full_emitted
         << ", \"stages\": " << full_stages << "},\n"
         << "    \"delta\": {\"wall_ms\": " << delta_ms
         << ", \"relocation_ms\": " << delta_reloc_ms
         << ", \"dirty_functions\": "
         << outcome.dirtyFunctions.size()
         << ", \"emitted_functions\": "
         << delta.stats.relocEmittedFunctions
         << ", \"spliced_functions\": "
         << delta.stats.relocReusedFunctions
         << ", \"stages\": " << delta_stages << "}\n  }";
    sections.add("warm_session", json.str());
}

/**
 * Pick a data byte nothing depends on: outside every recorded
 * read-set, donated scratch range, runtime-relocation slot, and
 * rewritten pointer cell. Scans .rodata backwards (the rodataPadding
 * tail lives there). Returns 0 when none exists.
 */
Addr
findUnreadDataByte(RewriteSession &session)
{
    DepIndex index;
    for (const auto &[entry, func] : session.analyze().functions)
        index.add(entry, func.dataDeps);
    index.build();

    const RewriteManifest &manifest = session.lastResult().manifest;
    auto claimed = [&](Addr a) {
        std::set<Addr> owners;
        index.overlapping(a, a + 1, owners);
        if (!owners.empty())
            return true;
        for (const auto &[addr, len] : manifest.scratchRanges)
            if (a >= addr && a < addr + len)
                return true;
        for (const Relocation &rel : session.input().relocs)
            if (a >= rel.site && a < rel.site + 8)
                return true;
        for (const FuncPtrPatch &p : manifest.funcPtrs)
            if (p.kind == FuncPtrPatch::Kind::dataCell &&
                a >= p.site && a < p.site + 8)
                return true;
        return false;
    };

    for (const Section &sec : session.input().sections) {
        if (sec.executable || sec.bytes.empty() ||
            sec.name != ".rodata")
            continue;
        for (std::size_t i = sec.bytes.size(); i-- > 0;) {
            const Addr a = sec.addr + static_cast<Addr>(i);
            if (!claimed(a))
                return a;
        }
    }
    return 0;
}

bool
flipImageByte(BinaryImage &img, Addr victim)
{
    for (Section &sec : img.sections) {
        if (!sec.contains(victim) || sec.bytes.empty())
            continue;
        const std::size_t off =
            static_cast<std::size_t>(victim - sec.addr);
        if (off >= sec.bytes.size())
            return false;
        sec.bytes[off] ^= 0x5a;
        return true;
    }
    return false;
}

/**
 * The data-dependency regime: the same libxul corpus pushed through
 * RewriteSession::loadInput under the three edit classes the
 * read-set slicing distinguishes — an unread-data edit (overlap
 * query finds no reader: every function splices, nothing
 * re-analyzes), a one-instruction code edit (one dirty function
 * re-emits), and a relocation-site edit (conservative full reset,
 * the pre-slicing worst case the first two are measured against).
 */
void
warmDatadepsSection(icp::bench::JsonSections &sections)
{
    ProgramSpec spec = libxulProfile();
    // A blob no analysis reads — the string-table shape of the
    // paper's data-edit workload.
    spec.rodataPadding = 4096;

    struct Regime
    {
        const char *name;
        bool expectIncremental;
    };
    const std::vector<Regime> regimes = {
        {"data-only", true},
        {"code-edit", true},
        {"reset", false},
    };

    RewriteOptions opts;
    opts.mode = RewriteMode::funcPtr;
    opts.instrumentation.countFunctionEntries = true;
    opts.threads = 1;
    // lint stays on: the splice path reuses the recorded manifest.

    TextTable table({"Edit", "Wall ms", "Incremental", "Dirty",
                     "Emitted", "Spliced"});
    std::ostringstream json;
    json << "[";
    for (std::size_t i = 0; i < regimes.size(); ++i) {
        const Regime &regime = regimes[i];
        // Fresh session per regime so every delta is measured
        // against the identical full-rewrite baseline.
        AnalysisCache::global().clear();
        RewriteSession session(compileProgram(spec));
        if (!session.rewrite(opts).ok) {
            std::fprintf(stderr, "session rewrite failed\n");
            std::exit(1);
        }

        BinaryImage edited = compileProgram(spec);
        bool prepared = false;
        if (std::string(regime.name) == "data-only") {
            const Addr victim = findUnreadDataByte(session);
            prepared = victim != 0 && flipImageByte(edited, victim);
        } else if (std::string(regime.name) == "code-edit") {
            prepared = mutateOneImmediate(edited);
        } else {
            // Overwrite a runtime-relocation slot: loadInput cannot
            // attribute the diff to any function and must reset.
            for (const Relocation &rel : edited.relocs)
                if ((prepared = flipImageByte(edited, rel.site)))
                    break;
        }
        if (!prepared) {
            std::fprintf(stderr, "no %s edit site found\n",
                         regime.name);
            std::exit(1);
        }

        StageTimers::global().reset();
        const auto t0 = std::chrono::steady_clock::now();
        const RewriteSession::LoadOutcome outcome =
            session.loadInput(std::move(edited));
        // A reset clears the previous result; the full re-rewrite it
        // forces is the cost of this edit class, so time it too.
        if (!outcome.incremental)
            session.rewrite(opts);
        const auto t1 = std::chrono::steady_clock::now();
        if (!session.lastResult().ok ||
            outcome.incremental != regime.expectIncremental) {
            std::fprintf(stderr, "%s edit: unexpected outcome\n",
                         regime.name);
            std::exit(1);
        }
        const double ms =
            std::chrono::duration<double, std::milli>(t1 - t0)
                .count();
        const RewriteResult &res = session.lastResult();
        table.addRow(
            {regime.name, std::to_string(ms),
             outcome.incremental ? "yes" : "no (reset)",
             std::to_string(outcome.dirtyFunctions.size()),
             std::to_string(res.stats.relocEmittedFunctions),
             std::to_string(res.stats.relocReusedFunctions)});
        json << (i ? ",\n" : "\n")
             << "    {\"edit\": \"" << regime.name
             << "\", \"wall_ms\": " << ms << ", \"incremental\": "
             << (outcome.incremental ? "true" : "false")
             << ", \"dirty_functions\": "
             << outcome.dirtyFunctions.size()
             << ", \"emitted_functions\": "
             << res.stats.relocEmittedFunctions
             << ", \"spliced_functions\": "
             << res.stats.relocReusedFunctions
             << ", \"stages\": " << StageTimers::global().json()
             << "}";
    }
    json << "\n  ]";
    std::printf("libxul data-dependency deltas "
                "(RewriteSession::loadInput by edit class)\n%s\n",
                table.render().c_str());
    sections.add("warm_datadeps", json.str());
}

bool
writeBlob(const std::string &path,
          const std::vector<std::uint8_t> &bytes)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char *>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
    return static_cast<bool>(out);
}

/**
 * One timed `icp rewrite --cache-file` subprocess — fork + execl +
 * waitpid, stdout to /dev/null. This is the cost the daemon
 * amortizes: process startup, binary load, cache-file load, a full
 * (non-splicing) emit, and the delta save. --lint matches the
 * daemon's options (a serve rewrite always carries the lint
 * manifest, which is what its `lint` verb answers from for free —
 * the one-shot equivalent of the CI rewrite→lint loop pays it per
 * process).
 */
double
oneShotRewriteMs(const std::string &in, const std::string &out,
                 const std::string &cache)
{
    const auto t0 = std::chrono::steady_clock::now();
    const pid_t pid = fork();
    if (pid == 0) {
        const int devnull = ::open("/dev/null", O_WRONLY);
        if (devnull >= 0)
            dup2(devnull, 1);
        execl(icp_binary.c_str(), icp_binary.c_str(), "rewrite",
              in.c_str(), out.c_str(), "--cache-file", cache.c_str(),
              "--mode", "jt", "--threads", "1", "--lint",
              static_cast<char *>(nullptr));
        _exit(127);
    }
    int status = 0;
    waitpid(pid, &status, 0);
    const auto t1 = std::chrono::steady_clock::now();
    if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
        std::fprintf(stderr, "one-shot icp rewrite failed (%s)\n",
                     icp_binary.c_str());
        std::exit(1);
    }
    return std::chrono::duration<double, std::milli>(t1 - t0)
        .count();
}

/**
 * The hot-session regime: an in-process `icp serve` daemon answers a
 * loop of one-immediate-edit rewrites (every iteration rewrites the
 * input file on disk, so each request takes the full stamp-check +
 * loadInput + selective-re-emit path), measured against forking the
 * real one-shot CLI with a primed --cache-file per edit. The serve
 * p50 should win by the process startup + cache load + full-emit
 * margin — the daemon's entire reason to exist.
 */
void
serveSection(icp::bench::JsonSections &sections)
{
    constexpr unsigned serve_reps = 20;

    struct ServeWorkload
    {
        const char *name;
        ProgramSpec spec;
    };
    std::vector<ServeWorkload> workloads;
    workloads.push_back({"libxul", libxulProfile()});
    workloads.push_back(
        {"chromium_small", chromiumSmallProfile(Arch::x64, true)});

    const bool have_icp = access(icp_binary.c_str(), X_OK) == 0;
    if (!have_icp)
        std::fprintf(stderr,
                     "serve bench: '%s' not executable; one-shot "
                     "subprocess baseline skipped (pass --icp)\n",
                     icp_binary.c_str());

    TextTable table({"Workload", "Serve p50 ms", "Serve p99 ms",
                     "Req/s", "One-shot p50 ms", "Speedup"});
    std::ostringstream json;
    json << "[";
    for (std::size_t wi = 0; wi < workloads.size(); ++wi) {
        ServeWorkload &w = workloads[wi];
        const std::string base = "/tmp/icp_bench_serve." +
                                 std::to_string(getpid()) + "." +
                                 w.name;
        const std::string in_path = base + ".sbf";
        const std::string out_path = base + ".out.sbf";
        const std::string one_in = base + ".oneshot.sbf";
        const std::string one_out = base + ".oneshot.out.sbf";
        const std::string one_cache = base + ".icpc";
        const std::string sock = base + ".sock";

        AnalysisCache::global().clear();
        BinaryImage img = compileProgram(w.spec);
        BinaryImage edited = img;
        if (!mutateOneImmediate(edited)) {
            std::fprintf(stderr,
                         "no in-place-mutable immediate found\n");
            std::exit(1);
        }
        const auto blob_a = img.serialize();
        const auto blob_b = edited.serialize();

        ServeOptions so;
        so.socketPath = sock;
        so.threads = 1;
        ServeServer server(so);
        std::string err;
        if (!server.start(err)) {
            std::fprintf(stderr, "serve bench: start failed: %s\n",
                         err.c_str());
            std::exit(1);
        }
        std::thread daemon([&server] { server.run(); });

        // A hot-loop client holds its connection open (the daemon's
        // frame loop serves any number of requests per connection),
        // so connect + accept + dispatch are paid once, not per
        // request — that is the steady state being measured here.
        sockaddr_un sa = {};
        sa.sun_family = AF_UNIX;
        std::snprintf(sa.sun_path, sizeof(sa.sun_path), "%s",
                      sock.c_str());
        const int cfd = socket(AF_UNIX, SOCK_STREAM, 0);
        if (cfd < 0 ||
            connect(cfd, reinterpret_cast<sockaddr *>(&sa),
                    sizeof(sa)) != 0) {
            std::fprintf(stderr, "serve bench: connect failed\n");
            std::exit(1);
        }

        auto serveRewrite = [&](ServeMessage &reply) {
            ServeMessage req;
            req.verb = "rewrite";
            req.set("path", in_path);
            req.set("out", out_path);
            req.set("mode", "jt");
            req.set("threads", std::uint64_t{1});
            std::string call_err;
            if (!writeServeFrame(cfd, req, 30000) ||
                readServeFrame(cfd, reply, 30000, call_err) !=
                    FrameStatus::ok ||
                reply.verb != "ok") {
                std::fprintf(stderr,
                             "serve bench: rewrite failed: %s %s\n",
                             call_err.c_str(),
                             reply.get("error").c_str());
                std::exit(1);
            }
        };

        // Cold open, untimed: the daemon's first load of this path.
        writeBlob(in_path, blob_a);
        ServeMessage reply;
        serveRewrite(reply);

        // One-shot cold prime, untimed: populates the cache file the
        // timed subprocess runs load from.
        if (have_icp) {
            std::remove(one_cache.c_str());
            writeBlob(one_in, blob_a);
            oneShotRewriteMs(one_in, one_out, one_cache);
        }

        // Warm loop: every rep rewrites both input files with the
        // other blob (a one-immediate diff from the resident /
        // cached state), so each request pays stamp check +
        // loadInput + selective re-emit, never the unchanged-file
        // cached-reply shortcut. The serve request and the one-shot
        // subprocess are timed back to back inside the same rep so
        // host-load drift (this is often a shared core) hits both
        // sides equally instead of whichever loop ran second.
        SampleStats serve_ms;
        SampleStats one_ms;
        std::uint64_t dirty_total = 0;
        std::uint64_t emitted_total = 0;
        for (unsigned r = 0; r < serve_reps; ++r) {
            writeBlob(in_path, r % 2 == 0 ? blob_b : blob_a);
            const auto t0 = std::chrono::steady_clock::now();
            serveRewrite(reply);
            const auto t1 = std::chrono::steady_clock::now();
            if (reply.getU64("warm") != 1 ||
                reply.getU64("incremental") != 1) {
                std::fprintf(stderr,
                             "serve bench: rep %u not a warm "
                             "incremental answer\n",
                             r);
                std::exit(1);
            }
            dirty_total += reply.getU64("dirty");
            emitted_total += reply.getU64("emitted");
            serve_ms.add(
                std::chrono::duration<double, std::milli>(t1 - t0)
                    .count());
            if (have_icp) {
                writeBlob(one_in, r % 2 == 0 ? blob_b : blob_a);
                one_ms.add(
                    oneShotRewriteMs(one_in, one_out, one_cache));
            }
        }
        close(cfd);
        server.requestDrain();
        daemon.join();

        const double p50 = serve_ms.percentile(50);
        const double p99 = serve_ms.percentile(99);
        const double req_per_sec =
            serve_ms.mean() > 0.0 ? 1000.0 / serve_ms.mean() : 0.0;
        const double one_p50 =
            one_ms.empty() ? 0.0 : one_ms.percentile(50);
        const double speedup = p50 > 0.0 && one_p50 > 0.0
                                   ? one_p50 / p50
                                   : 0.0;

        char p50s[32], p99s[32], rps[32], ones[32], sp[32];
        std::snprintf(p50s, sizeof(p50s), "%.3f", p50);
        std::snprintf(p99s, sizeof(p99s), "%.3f", p99);
        std::snprintf(rps, sizeof(rps), "%.1f", req_per_sec);
        std::snprintf(ones, sizeof(ones), "%.3f", one_p50);
        std::snprintf(sp, sizeof(sp), "%.2fx", speedup);
        table.addRow({w.name, p50s, p99s, rps,
                      one_ms.empty() ? "-" : ones,
                      one_ms.empty() ? "-" : sp});

        json << (wi ? ",\n" : "\n") << "    {\"workload\": \""
             << w.name << "\", \"reps\": " << serve_reps
             << ", \"dirty_per_rep\": "
             << (static_cast<double>(dirty_total) / serve_reps)
             << ", \"emitted_per_rep\": "
             << (static_cast<double>(emitted_total) / serve_reps)
             << ", \"serve_p50_ms\": " << p50
             << ", \"serve_p99_ms\": " << p99
             << ", \"serve_mean_ms\": " << serve_ms.mean()
             << ", \"serve_req_per_sec\": " << req_per_sec
             << ", \"oneshot_p50_ms\": "
             << (one_ms.empty() ? 0.0 : one_ms.percentile(50))
             << ", \"oneshot_p99_ms\": "
             << (one_ms.empty() ? 0.0 : one_ms.percentile(99))
             << ", \"speedup_p50\": " << speedup << "}";

        std::remove(in_path.c_str());
        std::remove(out_path.c_str());
        std::remove(one_in.c_str());
        std::remove(one_out.c_str());
        std::remove(one_cache.c_str());
    }
    json << "\n  ]";
    std::printf("serve daemon vs one-shot subprocess "
                "(one-immediate edit per request, mode jt)\n%s\n",
                table.render().c_str());
    sections.add("serve", json.str());
}

/**
 * The cross-binary regime: a corpus of libcommon binaries that share
 * a byte-identical static-lib core at different link addresses.
 * Binary 0 is rewritten cold into a shared cache file; each later
 * binary is then rewritten in a fresh-process model (in-memory cache
 * cleared, file loaded) against that file. Content-addressed keys
 * make every core function's entry hit despite the address shift;
 * rebase-on-hit pays only the address arithmetic. Reported per warm
 * binary: wall vs its own cold baseline, the function-analysis hit
 * rate, how many of those hits were cross-binary (origin entry !=
 * lookup entry), and the rebase stage cost.
 */
void
crossBinarySection(icp::bench::JsonSections &sections)
{
    const std::string xbin_cache = cache_file + ".xbin";
    const auto specs = libcommonCorpus(Arch::x64, 4);
    std::vector<BinaryImage> imgs;
    for (const auto &spec : specs)
        imgs.push_back(compileProgram(spec));

    // Per-binary cold baselines: no cache file, empty memory cache.
    std::vector<double> cold_ms(imgs.size(), 0.0);
    for (std::size_t b = 0; b < imgs.size(); ++b) {
        for (unsigned rep = 0; rep < reps; ++rep) {
            AnalysisCache::global().clear();
            const double ms = rewriteWallMs(imgs[b], 1);
            if (rep == 0 || ms < cold_ms[b])
                cold_ms[b] = ms;
        }
    }

    // Prime the shared file with binary 0 (itself a cold run).
    std::remove(xbin_cache.c_str());
    AnalysisCache::global().clear();
    rewriteWallMs(imgs[0], 1, xbin_cache);

    // B..N sequentially against the accumulating shared file. One
    // rep each: after a binary's run the file holds its app tail,
    // so repeating it would no longer model first contact.
    TextTable table({"Binary", "Cold ms", "Warm ms", "vs cold",
                     "Hit rate", "Cross hits", "Rebase ms"});
    table.addRow({"libcommon-app0 (prime)",
                  std::to_string(cold_ms[0]), "-", "-", "-", "-",
                  "-"});
    std::ostringstream json;
    json << "[";
    for (std::size_t b = 1; b < imgs.size(); ++b) {
        AnalysisCache::global().clear();
        StageTimers::global().reset();
        const auto stats0 = AnalysisCache::global().stats();
        const std::uint64_t cross0 =
            CacheCounters::global().crossHits.load();
        const double warm = rewriteWallMs(imgs[b], 1, xbin_cache);
        const auto stats1 = AnalysisCache::global().stats();
        const std::uint64_t cross =
            CacheCounters::global().crossHits.load() - cross0;
        const std::uint64_t hits =
            stats1.functionHits - stats0.functionHits;
        const std::uint64_t misses =
            stats1.functionMisses - stats0.functionMisses;
        const double hit_rate =
            hits + misses
                ? static_cast<double>(hits) /
                      static_cast<double>(hits + misses)
                : 0.0;
        const double rebase_ms =
            static_cast<double>(
                StageTimers::global().nanos(Stage::cacheRebase)) /
            1e6;
        const std::string stages = StageTimers::global().json();

        char vs_cold[32], rate[32], rebase[32];
        std::snprintf(vs_cold, sizeof(vs_cold), "%.2fx",
                      cold_ms[b] / warm);
        std::snprintf(rate, sizeof(rate), "%.1f%%",
                      hit_rate * 100.0);
        std::snprintf(rebase, sizeof(rebase), "%.3f", rebase_ms);
        table.addRow({specs[b].name, std::to_string(cold_ms[b]),
                      std::to_string(warm), vs_cold, rate,
                      std::to_string(cross), rebase});

        json << (b > 1 ? ",\n" : "\n") << "    {\"binary\": \""
             << specs[b].name << "\", \"cold_ms\": " << cold_ms[b]
             << ", \"warm_ms\": " << warm
             << ", \"function_hits\": " << hits
             << ", \"function_misses\": " << misses
             << ", \"hit_rate\": " << hit_rate
             << ", \"cross_hits\": " << cross
             << ", \"rebase_ms\": " << rebase_ms
             << ", \"cache_file_bytes\": " << fileBytes(xbin_cache)
             << ", \"stages\": " << stages << "}";
    }
    json << "\n  ]";
    std::printf("cross-binary cache sharing (libcommon x64 corpus, "
                "shared --cache-file primed by app0)\n%s\n",
                table.render().c_str());
    sections.add("cross_binary", json.str());
    std::remove(xbin_cache.c_str());
}

std::string
runsJson(const std::vector<Run> &runs)
{
    std::ostringstream out;
    out << "[";
    for (std::size_t i = 0; i < runs.size(); ++i) {
        const Run &r = runs[i];
        out << (i ? ",\n" : "\n")
            << "    {\"threads\": " << r.threads << ", \"cache\": \""
            << cacheModeName(r.mode) << "\", \"wall_ms\": "
            << r.wallMs
            << ", \"cache_file_bytes\": " << r.cacheFileBytes
            << ", \"stages\": " << r.stages << "}";
    }
    out << "\n  ]";
    return out.str();
}

} // namespace

int
main(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--cache-file" && i + 1 < argc)
            cache_file = argv[++i];
        else if (arg.rfind("--cache-file=", 0) == 0)
            cache_file = arg.substr(13);
        else if (arg == "--icp" && i + 1 < argc)
            icp_binary = argv[++i];
        else if (arg.rfind("--icp=", 0) == 0)
            icp_binary = arg.substr(6);
    }

    std::printf("Parallel pipeline scaling (hardware concurrency: "
                "%u)\n\n",
                std::thread::hardware_concurrency());

    icp::bench::JsonSections sections;
    {
        std::ostringstream hw;
        hw << std::thread::hardware_concurrency();
        sections.add("hardware_concurrency", hw.str());
    }

    // Before any corpus is compiled in-process: the forked
    // measurement children must inherit a near-empty address space.
    chromiumShardedSection(sections);

    struct Workload
    {
        const char *name;
        BinaryImage img;
    };
    std::vector<Workload> workloads;
    workloads.push_back({"libxul", compileProgram(libxulProfile())});
    workloads.push_back(
        {"spec_gcc_aarch64",
         compileProgram(specCpuSuite(Arch::aarch64, true)[1])});

    for (Workload &w : workloads) {
        TextTable table({"Threads", "Cache", "Wall ms", "Speedup",
                         "vs cold"});
        std::vector<Run> runs;
        double base_cold = 0.0;
        for (unsigned threads : {1u, 2u, 4u, 8u}) {
            double cold_ms = 0.0;
            for (CacheMode mode :
                 {CacheMode::cold, CacheMode::warmMemory,
                  CacheMode::coldDisk, CacheMode::warmDisk,
                  CacheMode::warmDiskDelta}) {
                Run run = measure(w.img, threads, mode);
                if (mode == CacheMode::cold) {
                    cold_ms = run.wallMs;
                    if (threads == 1)
                        base_cold = run.wallMs;
                }
                char speedup[32], vs_cold[32];
                std::snprintf(speedup, sizeof(speedup), "%.2fx",
                              base_cold / run.wallMs);
                std::snprintf(vs_cold, sizeof(vs_cold), "%.2fx",
                              cold_ms / run.wallMs);
                table.addRow({std::to_string(threads),
                              cacheModeName(run.mode),
                              std::to_string(run.wallMs), speedup,
                              mode == CacheMode::cold ? "-"
                                                      : vs_cold});
                runs.push_back(std::move(run));
            }
        }
        std::printf("%s: %zu functions\n%s\n", w.name,
                    w.img.functionSymbols().size(),
                    table.render().c_str());
        sections.add(w.name, runsJson(runs));
    }
    std::remove(cache_file.c_str());

    warmSessionSection(sections);
    warmDatadepsSection(sections);
    serveSection(sections);
    crossBinarySection(sections);

    if (!icp::bench::writeJsonIfRequested(argc, argv,
                                          sections.str()))
        return 1;
    return 0;
}
