#include "baselines/irlower.hh"

#include "analysis/builder.hh"
#include "baselines/regen_util.hh"
#include "rewrite/engine.hh"
#include "support/logging.hh"

namespace icp
{

RewriteResult
irLowerRewrite(const BinaryImage &input,
               const InstrumentationSpec &instrumentation)
{
    RewriteResult result;

    // The documented metadata limits of the IR-lowering tools.
    if (!input.pie) {
        result.failReason = "requires PIE (runtime relocations)";
        return result;
    }
    if (input.features.cppExceptions) {
        result.failReason = "C++ exceptions unsupported";
        return result;
    }
    if (input.features.isGo) {
        result.failReason = "Go metadata and stack unwinding "
                            "unsupported";
        return result;
    }
    if (input.features.rustMetadata) {
        result.failReason = "Rust metadata unsupported";
        return result;
    }
    if (input.features.symbolVersioning) {
        result.failReason = "symbol versioning unsupported";
        return result;
    }

    const CfgModule cfg = buildCfg(input, AnalysisOptions{});
    result.stats.totalFunctions = cfg.totalFunctions();
    result.stats.instrumentableFunctions =
        cfg.instrumentableFunctions();
    result.stats.originalLoadedSize = input.loadedSize();

    // All-or-nothing: one unanalyzable function fails the binary.
    std::set<Addr> all;
    for (const auto &[entry, func] : cfg.functions) {
        if (!func.instrumentable()) {
            result.failReason =
                "analysis failed for function " + func.name;
            return result;
        }
        all.insert(entry);
    }
    result.stats.instrumentedFunctions =
        static_cast<unsigned>(all.size());

    BinaryImage out = input;
    Section *old_text = out.findSection(SectionKind::text);
    icp_assert(old_text, "no .text");

    EngineConfig config;
    config.mode = RewriteMode::funcPtr;
    config.instrumentation = instrumentation;
    config.instrBase = input.highWaterMark(4096);
    config.newRodataBase = config.instrBase +
                           old_text->memSize * 4 + 0x10000;
    config.functionAlign = 4; // compacted layout (binary optimizer)

    EngineResult engine = relocateFunctions(cfg, all, config);

    // Remove the original code entirely; the regenerated code is
    // the new .text.
    old_text->addr = config.instrBase;
    old_text->bytes = engine.instrBytes;
    old_text->memSize = old_text->bytes.size();

    if (!engine.newRodataBytes.empty()) {
        Section ro;
        ro.name = ".newrodata";
        ro.kind = SectionKind::newRodata;
        ro.addr = config.newRodataBase;
        ro.bytes = engine.newRodataBytes;
        ro.memSize = ro.bytes.size();
        out.addSection(std::move(ro));
    }

    // Rewrite every function-pointer definition (the all-rewritten
    // property that gives IR lowering its zero-overhead profile).
    result.stats.rewrittenFuncPtrs =
        rewriteRegeneratedFuncPtrs(out, *old_text, cfg, engine);

    // Regenerate unwind records for the new layout (BOLT-style
    // "update DWARF"; trivial here because the qualifying binaries
    // have no try ranges).
    std::vector<FdeRecord> new_fdes;
    for (const auto &fde : input.fdeRecords()) {
        auto start_it = engine.blockMap.find(fde.start);
        if (start_it == engine.blockMap.end())
            continue;
        FdeRecord updated = fde;
        updated.start = start_it->second;
        // Conservative extent: up to the next function's start.
        auto next = engine.blockMap.upper_bound(fde.end - 1);
        updated.end = start_it->second + (fde.end - fde.start) * 4;
        (void)next;
        new_fdes.push_back(updated);
    }
    out.setFdeRecords(new_fdes);

    // New entry point: the relocated main.
    auto entry_it = engine.blockMap.find(input.entry);
    icp_assert(entry_it != engine.blockMap.end(), "entry missing");
    out.entry = entry_it->second;

    result.stats.rewrittenLoadedSize = out.loadedSize();
    result.blockCounters = engine.blockCounters;
    result.entryCounters = engine.entryCounters;
    result.image = std::move(out);
    result.ok = true;
    return result;
}

} // namespace icp
