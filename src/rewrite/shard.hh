/**
 * @file
 * Shard planning and worker-process management for the sharded
 * rewrite (`RewriteOptions::shards`). The coordinator partitions the
 * function space into contiguous address ranges; one worker process
 * per shard runs the analysis pipeline over its slice and persists
 * the results as a v2 analysis-cache shard (the store's flock'd
 * merge-on-save converges concurrent writers), which the coordinator
 * then consumes one shard at a time so its peak memory is bounded by
 * one shard's CFG rather than the whole binary's.
 */

#ifndef ICP_REWRITE_SHARD_HH
#define ICP_REWRITE_SHARD_HH

#include <string>
#include <vector>

#include "binfmt/image.hh"
#include "rewrite/options.hh"

namespace icp
{

/** One shard: functions with entry in [lo, hi). */
struct ShardRange
{
    Addr lo = 0;
    Addr hi = 0;
};

/**
 * Partition the image's functions into at most @p shards contiguous
 * address ranges with near-equal function counts. The ranges tile
 * the whole address space (first starts at 0, last ends at ~0), so
 * every function belongs to exactly one shard. Returns fewer ranges
 * when the image has fewer functions than requested shards.
 */
std::vector<ShardRange> planShards(const BinaryImage &image,
                                   unsigned shards);

/**
 * Fork one worker process per shard (sequentially — workers exist to
 * bound memory, not for speedup on this host) to analyze its range
 * and append the results to the cache file at @p cache_path. Each
 * worker: clears the inherited in-memory cache, merges the file,
 * builds the shard's CFG (range-restricted, cache-backed), computes
 * liveness for the functions the rewrite will instrument, and
 * delta-saves back under the store's advisory lock.
 *
 * A worker that exits abnormally (crash, kill) is retried once; a
 * second failure marks the shard degraded and the coordinator simply
 * re-analyzes that range itself — correctness is never affected,
 * only warm-cache reuse. Per-shard attempts, degradation, and the
 * worker's peak RSS (wait4 ru_maxrss) are recorded in @p counters,
 * which must be sized to @p ranges.
 *
 * Test hooks (multi-process torn-tail coverage):
 *  - ICP_TEST_KILL_SHARD=<k>: worker k, on its first attempt only,
 *    appends a torn partial segment to the cache file and SIGKILLs
 *    itself mid-"save".
 *  - ICP_TEST_KILL_SHARD_ALWAYS=<k>: same, on every attempt — forces
 *    the degraded path.
 */
void runShardWorkers(const BinaryImage &image,
                     const RewriteOptions &opts,
                     const std::vector<ShardRange> &ranges,
                     const std::string &cache_path,
                     std::vector<ShardCounters> &counters);

} // namespace icp

#endif // ICP_REWRITE_SHARD_HH
