/**
 * @file
 * Reproduces Figure 2's failure-mode analysis as a measurable
 * experiment: inject each jump-table-analysis failure mode and show
 * its effect on binary rewriting.
 *
 *   analysis reporting failure -> lower instrumentation coverage,
 *                                 other functions unaffected;
 *   over-approximation         -> extra (harmless) trampolines /
 *                                 possible traps, correct execution;
 *   under-approximation        -> missed trampolines, wrong
 *                                 instrumentation caught by the
 *                                 strong test.
 */

#include <cstdio>

#include "codegen/compiler.hh"
#include "codegen/workloads.hh"
#include "harness/verify.hh"
#include "rewrite/rewriter.hh"
#include "support/stats.hh"
#include "bench_main.hh"
#include "support/table.hh"

using namespace icp;

namespace
{

struct Row
{
    double coverage = 0;
    std::uint64_t trampolines = 0;
    std::uint64_t traps = 0;
    bool correct = false;
};

Row
runWithPlan(const BinaryImage &img, const JumpTableFailurePlan &plan,
            RewriteMode mode)
{
    RewriteOptions opts;
    opts.mode = mode;
    opts.clobberOriginal = true;
    opts.instrumentation.countFunctionEntries = true;
    opts.analysis.inject = plan;

    Row row;
    const RewriteResult rw = rewriteBinary(img, opts);
    if (!rw.ok)
        return row;
    row.coverage = rw.stats.coverage();
    row.trampolines = rw.stats.trampolines;
    row.traps = rw.stats.trapTramps;
    const VerifyOutcome outcome =
        verifyRewrite(img, rw, Machine::Config{});
    row.correct = outcome.pass;
    return row;
}

} // namespace

int
main(int argc, char **argv)
{
    std::printf("Figure 2: failure modes of binary analysis and "
                "their impact on rewriting\n(switch-heavy workload, "
                "x86-64, dir mode so table targets are CFL)\n\n");

    // A switch-heavy benchmark so jump tables matter.
    const auto suite = specCpuSuite(Arch::x64, false);
    const BinaryImage img = compileProgram(suite[1]); // 602.gcc-like

    TextTable table({"Injected failure", "Coverage", "Trampolines",
                     "Traps", "Strong test"});

    auto addRow = [&](const char *name, const Row &row) {
        table.addRow({name, formatPercent(row.coverage),
                      std::to_string(row.trampolines),
                      std::to_string(row.traps),
                      row.correct ? "PASS" : "FAIL (caught)"});
    };

    JumpTableFailurePlan none;
    addRow("none (baseline)", runWithPlan(img, none,
                                          RewriteMode::dir));

    JumpTableFailurePlan fail;
    fail.failProb = 0.5;
    addRow("analysis reporting failure (50%)",
           runWithPlan(img, fail, RewriteMode::dir));

    JumpTableFailurePlan over;
    over.overProb = 1.0;
    over.overExtra = 6;
    addRow("over-approximation (+6 entries)",
           runWithPlan(img, over, RewriteMode::dir));

    JumpTableFailurePlan under;
    under.underProb = 1.0;
    under.underCut = 3;
    addRow("under-approximation (-3 entries)",
           runWithPlan(img, under, RewriteMode::dir));

    std::printf("%s\n", table.render().c_str());
    std::printf(
        "Expected shape (S4.3): reporting failures only reduce "
        "coverage; over-\napproximation adds harmless trampolines "
        "and never breaks execution;\nunder-approximation loses "
        "trampolines and is catastrophic — the strong\ntest "
        "detects it.\n\n");

    // Second panel: in jt mode, over-approximation must also be
    // tolerated by jump-table cloning (garbage entries never read).
    TextTable jt_table({"Injected failure (jt mode)", "Coverage",
                        "Trampolines", "Traps", "Strong test"});
    JumpTableFailurePlan over_jt;
    over_jt.overProb = 1.0;
    over_jt.overExtra = 6;
    const Row jt_base = runWithPlan(img, none, RewriteMode::jt);
    const Row jt_over = runWithPlan(img, over_jt, RewriteMode::jt);
    jt_table.addRow({"none (baseline)", formatPercent(jt_base.coverage),
                     std::to_string(jt_base.trampolines),
                     std::to_string(jt_base.traps),
                     jt_base.correct ? "PASS" : "FAIL"});
    jt_table.addRow({"over-approximation (+6 entries)",
                     formatPercent(jt_over.coverage),
                     std::to_string(jt_over.trampolines),
                     std::to_string(jt_over.traps),
                     jt_over.correct ? "PASS" : "FAIL"});
    std::printf("%s\n", jt_table.render().c_str());
    std::printf("Cloned tables tolerate over-approximation because "
                "the original table is\nleft unchanged and garbage "
                "clone entries are never dereferenced (S5.1,\n"
                "Failure 3).\n");
    icp::bench::JsonSections sections;
    sections.add("dir", table.json());
    sections.add("jt", jt_table.json());
    if (!icp::bench::writeJsonIfRequested(argc, argv,
                                          sections.str()))
        return 1;
    return 0;
}
