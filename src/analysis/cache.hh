/**
 * @file
 * The incremental analysis cache: the "incremental" in incremental
 * CFG patching applied to analysis time. Per-function analysis
 * results (CFG with jump tables, liveness summaries) are memoized
 * under an FNV-1a key of the function's byte range, entry address,
 * architecture, and analysis options, so re-rewriting an unchanged
 * (or slightly changed) binary skips almost all analysis work: only
 * functions whose bytes actually changed are re-analyzed.
 *
 * Keying caveat: the key covers the function's own bytes and the
 * layout (address/size) of every non-executable loadable section,
 * but not data-section *contents*. Jump-table data may live in
 * .rodata, so a code-keyed hit could be stale after a data edit;
 * buildCfg therefore validates every hit against the function's
 * recorded data read-set (Function::dataDeps, per-range FNV content
 * hashes, stored alongside the function under the same key) and
 * degrades to a conservative miss when the deps are absent or their
 * bytes changed. Data edits thus invalidate exactly the functions
 * that read the edited bytes, not the whole image.
 */

#ifndef ICP_ANALYSIS_CACHE_HH
#define ICP_ANALYSIS_CACHE_HH

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "analysis/builder.hh"
#include "analysis/datadeps.hh"
#include "analysis/liveness.hh"

namespace icp
{

struct CacheLoadReport; // analysis/cache_store.hh

/**
 * A read-only mapping of a cache file (mmap with a heap-buffer
 * fallback), shared by every lazy entry indexed from it so the bytes
 * stay addressable for the process lifetime of those entries.
 * Appends to the file never move the mapped prefix, and full
 * rewrites go through rename (new inode), so a mapping can never be
 * invalidated behind its holders' backs.
 */
class MappedCacheFile
{
  public:
    /** nullptr when the file does not exist or cannot be read. */
    static std::shared_ptr<MappedCacheFile>
    open(const std::string &path);

    ~MappedCacheFile();
    MappedCacheFile(const MappedCacheFile &) = delete;
    MappedCacheFile &operator=(const MappedCacheFile &) = delete;

    const std::uint8_t *data() const { return data_; }
    std::size_t size() const { return size_; }

  private:
    MappedCacheFile() = default;

    const std::uint8_t *data_ = nullptr;
    std::size_t size_ = 0;
    void *map_ = nullptr;              ///< munmap target (or null)
    std::vector<std::uint8_t> buffer_; ///< read() fallback storage
};

/** Incremental FNV-1a (64-bit). */
std::uint64_t fnv1a(const void *data, std::size_t len,
                    std::uint64_t hash = 0xcbf29ce484222325ULL);

/**
 * Image-wide key component: architecture, PIE-ness, analysis
 * options, and all non-executable loadable bytes. Computed once per
 * buildCfg call and folded into every function key.
 */
std::uint64_t imageCacheSeed(const BinaryImage &image,
                             const AnalysisOptions &opts);

/**
 * Key of one function's analysis results under @p seed: its entry,
 * size, name, landing-pad layout, and code bytes.
 */
std::uint64_t functionCacheKey(const BinaryImage &image,
                               const Symbol &sym,
                               const std::vector<TryRange> &tries,
                               std::uint64_t seed);

/**
 * Process-wide memo of per-function analysis results. Thread-safe;
 * entries are shared immutable snapshots. Consulted by buildCfg
 * (function CFGs) and the rewriter (liveness), so the second
 * rewrite of the same image reuses >= 95% of analysis work.
 */
class AnalysisCache
{
  public:
    struct Stats
    {
        std::uint64_t functionHits = 0;
        std::uint64_t functionMisses = 0;
        std::uint64_t livenessHits = 0;
        std::uint64_t livenessMisses = 0;

        std::uint64_t
        hits() const
        {
            return functionHits + livenessHits;
        }

        std::uint64_t
        misses() const
        {
            return functionMisses + livenessMisses;
        }
    };

    static AnalysisCache &global();

    /**
     * nullptr on miss. Counts a hit/miss either way. An entry
     * indexed lazily from a mapped cache file is checksum-verified
     * and deserialized on its first lookup here (and only then) — a
     * corrupt or malformed payload degrades to a miss and the
     * function simply re-analyzes.
     */
    std::shared_ptr<const Function> findFunction(std::uint64_t key);
    void storeFunction(std::uint64_t key, Arch arch, Function func);

    std::shared_ptr<const LivenessResult>
    findLiveness(std::uint64_t key);
    void storeLiveness(std::uint64_t key, Arch arch,
                       LivenessResult live);

    /**
     * The data read-set recorded for @p key's function, or nullptr
     * when none was stored (pre-deps cache file, caching off): the
     * consumer must then treat a code-keyed hit as a conservative
     * miss. Does not count toward hit/miss stats — deps ride along
     * with their function entry.
     */
    std::shared_ptr<const DataDeps> findDataDeps(std::uint64_t key);
    void storeDataDeps(std::uint64_t key, Arch arch, DataDeps deps);

    Stats stats() const;

    /** Decoded plus lazily-indexed entries. */
    std::size_t entryCount() const;
    void clear();

    // --- on-disk persistence (implemented in cache_store.cc) -----------

    /**
     * Persist the cache to @p path in the v2 format of
     * analysis/cache_store.hh. Delta save: under the advisory
     * `<path>.lock` flock, the file's existing key set is re-scanned
     * (merging segments appended by concurrent writers) and only
     * entries the file lacks are appended as one new segment — when
     * nothing is missing the file is not touched at all. A v1,
     * torn-tailed, or unreadable target falls back to a full atomic
     * rewrite (tmp + rename). When @p max_bytes is non-zero and the
     * file ends up larger, it is compacted in place under the same
     * lock (newest-generation entries survive). Returns false when
     * the file cannot be written.
     */
    bool save(const std::string &path,
              std::uint64_t max_bytes = 0) const;

    /**
     * Merge entries from @p path. The file is mapped, file/segment/
     * entry headers are verified, and surviving entries are indexed
     * for lazy deserialization — no payload byte is read here
     * (checksum verification and decode happen on first lookup; a
     * corrupt payload degrades to a miss there). Tolerant by
     * construction: a missing file, a bad magic or future version,
     * truncated or torn segments load as empty-or-partial, each
     * recorded as a structured cache-* issue on the report — never a
     * crash. A v1 file loads read-only with a single `cache-migrated`
     * info issue. When @p expect_arch is set, entries tagged with any
     * other ISA are dropped (their keys could never be looked up, but
     * dropping keeps the merge bounded and reports the mismatch).
     * Existing in-memory entries win over file entries with the same
     * key.
     */
    CacheLoadReport load(const std::string &path,
                         std::optional<Arch> expect_arch = {});

  private:
    /** One memoized result, tagged with the ISA it was built for. */
    template <typename T> struct Entry
    {
        Arch arch = Arch::x64;
        std::shared_ptr<const T> value;
    };

    /**
     * One not-yet-decoded entry pointing into a mapped cache file.
     * Checksum verification and decode both happen on first lookup
     * (keeping load() free of any per-byte work). The shared mapping
     * keeps the bytes alive.
     */
    struct PendingEntry
    {
        Arch arch = Arch::x64;
        const std::uint8_t *payload = nullptr;
        std::uint32_t payloadLen = 0;
        std::uint64_t payloadHash = 0;
        std::shared_ptr<MappedCacheFile> file;
    };

    mutable std::mutex mu_;
    std::unordered_map<std::uint64_t, Entry<Function>> functions_;
    std::unordered_map<std::uint64_t, Entry<LivenessResult>>
        liveness_;
    std::unordered_map<std::uint64_t, Entry<DataDeps>> dataDeps_;
    std::unordered_map<std::uint64_t, PendingEntry>
        pendingFunctions_;
    std::unordered_map<std::uint64_t, PendingEntry> pendingLiveness_;
    std::unordered_map<std::uint64_t, PendingEntry>
        pendingDataDeps_;
    Stats stats_;
};

} // namespace icp

#endif // ICP_ANALYSIS_CACHE_HH
