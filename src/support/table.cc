#include "table.hh"

#include <algorithm>
#include <sstream>

#include "logging.hh"

namespace icp
{

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header))
{
    icp_assert(!header_.empty(), "TextTable: empty header");
}

void
TextTable::addRow(std::vector<std::string> cells)
{
    icp_assert(cells.size() == header_.size(),
               "TextTable: row width %zu != header width %zu",
               cells.size(), header_.size());
    rows_.push_back(std::move(cells));
}

void
TextTable::addSeparator()
{
    rows_.emplace_back();
}

std::string
TextTable::render() const
{
    std::vector<std::size_t> widths(header_.size());
    for (std::size_t c = 0; c < header_.size(); ++c)
        widths[c] = header_[c].size();
    for (const auto &row : rows_) {
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }

    auto rule = [&] {
        std::string s = "+";
        for (auto w : widths)
            s += std::string(w + 2, '-') + "+";
        s += "\n";
        return s;
    };
    auto line = [&](const std::vector<std::string> &cells) {
        std::string s = "|";
        for (std::size_t c = 0; c < widths.size(); ++c) {
            const std::string &v = cells[c];
            s += " " + v + std::string(widths[c] - v.size(), ' ') + " |";
        }
        s += "\n";
        return s;
    };

    std::ostringstream out;
    out << rule() << line(header_) << rule();
    for (const auto &row : rows_) {
        if (row.empty())
            out << rule();
        else
            out << line(row);
    }
    out << rule();
    return out.str();
}

} // namespace icp
