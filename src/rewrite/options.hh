/**
 * @file
 * Options and result types of the incremental-CFG-patching rewriter.
 * The three modes of §3 (dir / jt / func-ptr) plus the knobs that
 * the baselines and ablation benchmarks toggle: trampoline placement
 * analysis, multi-hop trampolines, RA translation vs call emulation,
 * and the strong-test byte clobbering of §8.
 */

#ifndef ICP_REWRITE_OPTIONS_HH
#define ICP_REWRITE_OPTIONS_HH

#include <map>
#include <optional>
#include <set>
#include <string>

#include "analysis/builder.hh"
#include "analysis/cache_store.hh"
#include "binfmt/image.hh"
#include "rewrite/manifest.hh"

namespace icp
{

/** Binary rewriting modes (§3): which control flow is rewritten. */
enum class RewriteMode : std::uint8_t
{
    dir,     ///< direct control flow only
    jt,      ///< + jump tables (cloned)
    funcPtr, ///< + function-pointer definitions
};

const char *rewriteModeName(RewriteMode mode);

/** Layout permutations for the BOLT comparison (§8.3). */
enum class OrderPolicy : std::uint8_t
{
    original,
    reversed,
};

/**
 * Fault-injection selector for the static verifier's self test:
 * each value plants exactly one defect in an emitted artifact, and
 * the manifest records the single lint rule that must flag it.
 */
enum class InjectDefect : std::uint8_t
{
    none = 0,
    trampTarget,    ///< retarget a trampoline into unmapped space
    trampRange,     ///< encode a branch beyond the ISA's reach
    trampChain,     ///< make a trampoline chain loop on itself
    liveScratch,    ///< long form using a live scratch register
    tocScratch,     ///< ppc long form clobbering the TOC register
    staleCloneEntry,///< skip one cloned jump-table entry fixup
    cloneBounds,    ///< shrink .newrodata under a clone's extent
    doublePatch,    ///< record two overlapping trampoline patches
    raMapEntry,     ///< corrupt one .ra_map pair
    dropFde,        ///< drop the FDE covering a relocated function
    funcPtrStale,   ///< restore a rewritten pointer cell
    depMissing,     ///< drop one recorded data read-set range
    depStale,       ///< flip one recorded read-set range hash
    depOverbroad,   ///< append a large bogus (but clean-hash) range
};

const char *injectDefectName(InjectDefect defect);

/** Parse an --inject argument; nullopt on unknown names. */
std::optional<InjectDefect> parseInjectDefect(const std::string &name);

/** What snippets the instrumenter inserts. */
struct InstrumentationSpec
{
    /** CallRt counter at the top of every relocated basic block. */
    bool countBlocks = false;

    /** CallRt counter at function entry blocks only. */
    bool countFunctionEntries = false;

    /**
     * Selective instrumentation (the Dyninst "instrumentation
     * point" model, §8): when non-empty, countBlocks applies only
     * to these block start addresses.
     */
    std::set<Addr> onlyBlocks;

    bool
    empty() const
    {
        return !countBlocks && !countFunctionEntries;
    }

    bool
    instrumentsBlock(Addr block) const
    {
        return countBlocks &&
               (onlyBlocks.empty() || onlyBlocks.count(block));
    }
};

/** Per-shard work accounting for the sharded rewrite. */
struct ShardCounters
{
    /** The shard's function-entry range [lo, hi). */
    Addr lo = 0;
    Addr hi = 0;

    unsigned functions = 0; ///< functions analyzed in the shard
    unsigned instrumented = 0;
    std::uint64_t blocks = 0; ///< basic blocks across the shard
    std::uint64_t insns = 0;  ///< decoded instructions

    /** Worker forks for this shard (1 normal, 2 after a retry). */
    unsigned workerAttempts = 0;

    /** Worker never succeeded; the coordinator analyzed cold. */
    bool degraded = false;

    /** Worker peak RSS from wait4 ru_maxrss (0 when degraded). */
    std::uint64_t workerPeakRssBytes = 0;
};

struct RewriteOptions
{
    RewriteMode mode = RewriteMode::funcPtr;

    /**
     * §4: install trampolines only at CFL blocks and extend them
     * into trampoline superblocks. When off, every block gets a
     * trampoline in place (SRBI-style placement).
     */
    bool trampolinePlacement = true;

    /**
     * §7: when a block is too small for a sufficient-range
     * trampoline, chain a short branch through scratch space
     * (padding bytes, scratch blocks, retired dynamic-linking
     * sections) instead of trapping.
     */
    bool multiHop = true;

    /**
     * §6: runtime RA translation (emit .ra_map; the preloaded
     * runtime library translates during unwinding). When off, calls
     * are emulated (original return address materialized; call
     * fall-through blocks become CFL blocks).
     */
    bool raTranslation = true;

    /**
     * §8's strong test: overwrite every instrumented-function byte
     * that is not a trampoline (or embedded table data) with an
     * illegal opcode, so any missed control flow faults immediately.
     */
    bool clobberOriginal = false;

    InstrumentationSpec instrumentation;

    /**
     * The §4.2 extension: skip trampolines at CFL blocks from which
     * no instrumented block is reachable in the CFG. Sound only
     * without byte clobbering (skipped paths execute original
     * code), so it is rejected when combined with clobberOriginal.
     */
    bool reachabilityPruning = false;

    AnalysisOptions analysis;

    /** Partial instrumentation: restrict to these names (§9). */
    std::set<std::string> onlyFunctions;

    /**
     * Demote every trampoline in these functions to a trap
     * trampoline. RewriteSession::repair adds a function here when a
     * targeted re-rewrite failed to clear its lint findings twice:
     * traps are the always-sound fallback (§4.3), at runtime cost.
     */
    std::set<std::string> forceTrapFunctions;

    /**
     * Restrict fault injection (injectDefect) to sites inside this
     * function. Used by the repair-convergence tests to model a
     * persistent per-function defect. Does not apply to the
     * section-level defects (raMapEntry, cloneBounds), which corrupt
     * a section rather than a function-local site.
     */
    std::string injectOnlyFunction;

    /** Layout permutations (BOLT comparison). */
    OrderPolicy functionOrder = OrderPolicy::original;
    OrderPolicy blockOrder = OrderPolicy::original;

    /**
     * Worker threads for the per-function analysis and relocation
     * pipeline: 0 = hardware concurrency, 1 = fully sequential.
     * Results are bit-identical for every value.
     */
    unsigned threads = 0;

    /**
     * Consult the process-wide AnalysisCache so repeated rewrites of
     * an unchanged binary reuse per-function CFGs, jump tables, and
     * liveness instead of recomputing them.
     */
    bool useAnalysisCache = true;

    /**
     * On-disk AnalysisCache file (CLI --cache-file). When non-empty
     * (and useAnalysisCache is on), the rewrite merges the file into
     * the process-wide cache before analysis and saves the cache
     * back on success, making warm-cache reuse a cross-invocation
     * property. Corrupt or mismatched files degrade to a cold run
     * with structured cache-* issues on RewriteResult::cacheLoad.
     */
    std::string cachePath;

    /**
     * Size cap for cachePath (CLI --cache-max-bytes; 0 = unbounded).
     * When a save leaves the file larger than this, it is compacted
     * in place keeping newest-generation entries first — the
     * automatic variant of `icp cache compact`.
     */
    std::uint64_t cacheMaxBytes = 0;

    /**
     * Record the RewriteManifest on the result so the static
     * soundness verifier (lintRewrite in src/verify/) can check the
     * rewritten image against what the rewriter intended to emit.
     */
    bool lint = true;

    /** Plant one defect for the verifier's self test (tests only). */
    InjectDefect injectDefect = InjectDefect::none;

    /**
     * Shard the rewrite across worker processes and stream the
     * output (rewriteBinarySharded): the function space is split
     * into this many contiguous address ranges, each analyzed by a
     * forked worker that persists its results as an analysis-cache
     * shard, and the coordinator drives the per-function relocation
     * engine one shard at a time so peak memory is O(shard), not
     * O(binary). Output bytes are identical for every shard count
     * (and to the materializing path). 0 = classic single-process
     * rewrite. Incompatible with lint manifests, fault injection,
     * session reuse/repair, and reversed layout orders.
     */
    unsigned shards = 0;

    /**
     * Reorder-window budget of the streaming output writer used by
     * the sharded path (bytes buffered for out-of-order chunks
     * before falling back to positioned writes). 0 = writer default.
     */
    std::size_t streamWindowBytes = 0;
};

struct RewriteStats
{
    unsigned totalFunctions = 0;
    unsigned instrumentableFunctions = 0;
    unsigned instrumentedFunctions = 0;

    std::uint64_t cflBlocks = 0;
    std::uint64_t totalBlocks = 0;
    std::uint64_t trampolines = 0;
    std::uint64_t directTramps = 0;  ///< single-branch form
    std::uint64_t longTramps = 0;    ///< multi-instruction form
    std::uint64_t multiHopTramps = 0;
    std::uint64_t trapTramps = 0;
    std::uint64_t raMapEntries = 0;
    std::uint64_t clonedTables = 0;
    std::uint64_t rewrittenFuncPtrs = 0;

    /**
     * Selective re-rewrite accounting: how many instrumented
     * functions the engine re-emitted this pass vs. spliced verbatim
     * from a previous pass's bytes (RewriteSession::repair).
     * A from-scratch rewrite emits every function and reuses none.
     */
    unsigned relocEmittedFunctions = 0;
    unsigned relocReusedFunctions = 0;

    /** Per-shard work counters (sharded rewrites only). */
    std::vector<ShardCounters> shards;

    std::uint64_t originalLoadedSize = 0;
    std::uint64_t rewrittenLoadedSize = 0;

    double
    sizeIncrease() const
    {
        return originalLoadedSize == 0
            ? 0.0
            : static_cast<double>(rewrittenLoadedSize) /
                  static_cast<double>(originalLoadedSize) - 1.0;
    }

    double
    coverage() const
    {
        return totalFunctions == 0
            ? 0.0
            : static_cast<double>(instrumentedFunctions) /
                  static_cast<double>(totalFunctions);
    }
};

struct RewriteResult
{
    bool ok = false;
    std::string failReason;

    BinaryImage image;
    RewriteStats stats;

    /** Counter-id maps for verification (block/entry -> CallRt id). */
    std::map<Addr, std::uint32_t> blockCounters;
    std::map<Addr, std::uint32_t> entryCounters;

    /** What was emitted where; input to the static verifier. */
    RewriteManifest manifest;

    /**
     * Outcome of loading RewriteOptions::cachePath (default-empty
     * when no cache file was configured). Lint folds its issues into
     * the report as cache-* warnings.
     */
    CacheLoadReport cacheLoad;
};

} // namespace icp

#endif // ICP_REWRITE_OPTIONS_HH
