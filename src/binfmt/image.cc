#include "binfmt/image.hh"

#include <algorithm>
#include <cstring>
#include <utility>

#include "isa/bytes.hh"
#include "support/logging.hh"

namespace icp
{

const char *
sectionKindName(SectionKind kind)
{
    switch (kind) {
      case SectionKind::text: return ".text";
      case SectionKind::rodata: return ".rodata";
      case SectionKind::data: return ".data";
      case SectionKind::bss: return ".bss";
      case SectionKind::dynsym: return ".dynsym";
      case SectionKind::dynstr: return ".dynstr";
      case SectionKind::relaDyn: return ".rela.dyn";
      case SectionKind::ehFrame: return ".eh_frame";
      case SectionKind::instr: return ".instr";
      case SectionKind::raMap: return ".ra_map";
      case SectionKind::trapMap: return ".trap_map";
      case SectionKind::newRodata: return ".newrodata";
      case SectionKind::other: return ".other";
    }
    return "?";
}

Section *
BinaryImage::findSection(const std::string &name)
{
    for (auto &s : sections) {
        if (s.name == name)
            return &s;
    }
    return nullptr;
}

const Section *
BinaryImage::findSection(const std::string &name) const
{
    return const_cast<BinaryImage *>(this)->findSection(name);
}

Section *
BinaryImage::findSection(SectionKind kind)
{
    for (auto &s : sections) {
        if (s.kind == kind)
            return &s;
    }
    return nullptr;
}

const Section *
BinaryImage::findSection(SectionKind kind) const
{
    return const_cast<BinaryImage *>(this)->findSection(kind);
}

const Section *
BinaryImage::sectionAt(Addr a) const
{
    for (const auto &s : sections) {
        if (s.contains(a))
            return &s;
    }
    return nullptr;
}

Section *
BinaryImage::sectionAt(Addr a)
{
    return const_cast<Section *>(std::as_const(*this).sectionAt(a));
}

std::vector<const Symbol *>
BinaryImage::functionSymbols() const
{
    std::vector<const Symbol *> funcs;
    for (const auto &sym : symbols) {
        if (sym.kind == Symbol::Kind::function)
            funcs.push_back(&sym);
    }
    std::sort(funcs.begin(), funcs.end(),
              [](const Symbol *a, const Symbol *b) {
                  return a->addr < b->addr;
              });
    return funcs;
}

const Symbol *
BinaryImage::functionContaining(Addr a) const
{
    const Symbol *best = nullptr;
    for (const auto &sym : symbols) {
        if (sym.kind != Symbol::Kind::function)
            continue;
        if (a >= sym.addr && a < sym.addr + sym.size) {
            if (!best || sym.addr > best->addr)
                best = &sym;
        }
    }
    return best;
}

std::vector<FdeRecord>
BinaryImage::fdeRecords() const
{
    const Section *s = findSection(SectionKind::ehFrame);
    if (!s || s->bytes.empty())
        return {};
    return parseEhFrame(s->bytes);
}

void
BinaryImage::setFdeRecords(const std::vector<FdeRecord> &fdes)
{
    Section *s = findSection(SectionKind::ehFrame);
    icp_assert(s, "image has no .eh_frame");
    s->bytes = serializeEhFrame(fdes);
    s->memSize = s->bytes.size();
}

std::uint64_t
BinaryImage::loadedSize() const
{
    std::uint64_t total = 0;
    for (const auto &s : sections) {
        if (s.loadable)
            total += s.memSize;
    }
    return total;
}

bool
BinaryImage::readBytes(Addr addr, std::size_t len,
                       std::vector<std::uint8_t> &out) const
{
    const Section *s = sectionAt(addr);
    if (!s || addr + len > s->end())
        return false;
    out.resize(len);
    const Offset off = addr - s->addr;
    for (std::size_t i = 0; i < len; ++i) {
        out[i] = (off + i < s->bytes.size()) ? s->bytes[off + i] : 0;
    }
    return true;
}

std::optional<std::uint64_t>
BinaryImage::readValue(Addr addr, unsigned size) const
{
    std::vector<std::uint8_t> raw;
    if (!readBytes(addr, size, raw))
        return std::nullopt;
    std::uint64_t v = 0;
    for (unsigned i = 0; i < size; ++i)
        v |= static_cast<std::uint64_t>(raw[i]) << (8 * i);
    return v;
}

bool
BinaryImage::writeBytes(Addr addr, const std::vector<std::uint8_t> &bytes)
{
    Section *s = sectionAt(addr);
    if (!s || addr + bytes.size() > s->end())
        return false;
    const Offset off = addr - s->addr;
    if (off + bytes.size() > s->bytes.size())
        s->bytes.resize(off + bytes.size(), 0);
    std::copy(bytes.begin(), bytes.end(), s->bytes.begin() + off);
    return true;
}

Addr
BinaryImage::highWaterMark(unsigned alignment) const
{
    Addr top = prefBase;
    for (const auto &s : sections)
        top = std::max(top, s.end());
    const Addr mask = alignment - 1;
    return (top + mask) & ~static_cast<Addr>(mask);
}

Section &
BinaryImage::addSection(Section section)
{
    for (const auto &s : sections) {
        const bool overlap = section.addr < s.end() &&
                             s.addr < section.end();
        icp_assert(!overlap, "section %s overlaps %s",
                   section.name.c_str(), s.name.c_str());
    }
    sections.push_back(std::move(section));
    return sections.back();
}

// --- serialization ---------------------------------------------------------

namespace
{

constexpr std::uint32_t sbf_magic = 0x31464253; // "SBF1"

void
putString(std::vector<std::uint8_t> &out, const std::string &s)
{
    putU32(out, static_cast<std::uint32_t>(s.size()));
    out.insert(out.end(), s.begin(), s.end());
}

std::string
getString(const std::vector<std::uint8_t> &raw, std::size_t &pos)
{
    icp_assert(pos + 4 <= raw.size(), "SBF truncated");
    const std::uint32_t len = getU32(raw.data() + pos);
    pos += 4;
    icp_assert(pos + len <= raw.size(), "SBF truncated");
    std::string s(raw.begin() + static_cast<std::ptrdiff_t>(pos),
                  raw.begin() + static_cast<std::ptrdiff_t>(pos + len));
    pos += len;
    return s;
}

std::uint64_t
getU64At(const std::vector<std::uint8_t> &raw, std::size_t &pos)
{
    icp_assert(pos + 8 <= raw.size(), "SBF truncated");
    const std::uint64_t v = getU64(raw.data() + pos);
    pos += 8;
    return v;
}

std::uint32_t
getU32At(const std::vector<std::uint8_t> &raw, std::size_t &pos)
{
    icp_assert(pos + 4 <= raw.size(), "SBF truncated");
    const std::uint32_t v = getU32(raw.data() + pos);
    pos += 4;
    return v;
}

std::uint8_t
getU8At(const std::vector<std::uint8_t> &raw, std::size_t &pos)
{
    icp_assert(pos + 1 <= raw.size(), "SBF truncated");
    return raw[pos++];
}

} // namespace

std::vector<std::uint8_t>
BinaryImage::serialize() const
{
    std::vector<std::uint8_t> out;
    putU32(out, sbf_magic);
    putU8(out, static_cast<std::uint8_t>(arch));
    putU8(out, pie ? 1 : 0);
    putU64(out, prefBase);
    putU64(out, entry);
    putU64(out, tocBase);
    putString(out, soname);
    putU8(out, features.cppExceptions);
    putU8(out, features.isGo);
    putU8(out, features.rustMetadata);
    putU8(out, features.symbolVersioning);
    putU8(out, features.fortranComponent);

    putU32(out, static_cast<std::uint32_t>(sections.size()));
    for (const auto &s : sections) {
        putString(out, s.name);
        putU8(out, static_cast<std::uint8_t>(s.kind));
        putU64(out, s.addr);
        putU64(out, s.memSize);
        putU8(out, static_cast<std::uint8_t>(
            (s.loadable ? 1 : 0) | (s.executable ? 2 : 0) |
            (s.writable ? 4 : 0)));
        putU32(out, static_cast<std::uint32_t>(s.bytes.size()));
        out.insert(out.end(), s.bytes.begin(), s.bytes.end());
    }

    putU32(out, static_cast<std::uint32_t>(symbols.size()));
    for (const auto &sym : symbols) {
        putString(out, sym.name);
        putU8(out, static_cast<std::uint8_t>(sym.kind));
        putU64(out, sym.addr);
        putU64(out, sym.size);
    }

    putU32(out, static_cast<std::uint32_t>(relocs.size()));
    for (const auto &rel : relocs) {
        putU64(out, rel.site);
        putU64(out, static_cast<std::uint64_t>(rel.addend));
    }

    putU32(out, static_cast<std::uint32_t>(linkRelocs.size()));
    for (const auto &rel : linkRelocs) {
        putU64(out, rel.site);
        putString(out, rel.symbol);
        putU64(out, static_cast<std::uint64_t>(rel.addend));
    }
    return out;
}

BinaryImage
BinaryImage::deserialize(const std::vector<std::uint8_t> &raw)
{
    BinaryImage img;
    std::size_t pos = 0;
    icp_assert(getU32At(raw, pos) == sbf_magic, "bad SBF magic");
    img.arch = static_cast<Arch>(getU8At(raw, pos));
    img.pie = getU8At(raw, pos) != 0;
    img.prefBase = getU64At(raw, pos);
    img.entry = getU64At(raw, pos);
    img.tocBase = getU64At(raw, pos);
    img.soname = getString(raw, pos);
    img.features.cppExceptions = getU8At(raw, pos);
    img.features.isGo = getU8At(raw, pos);
    img.features.rustMetadata = getU8At(raw, pos);
    img.features.symbolVersioning = getU8At(raw, pos);
    img.features.fortranComponent = getU8At(raw, pos);

    const std::uint32_t nsec = getU32At(raw, pos);
    for (std::uint32_t i = 0; i < nsec; ++i) {
        Section s;
        s.name = getString(raw, pos);
        s.kind = static_cast<SectionKind>(getU8At(raw, pos));
        s.addr = getU64At(raw, pos);
        s.memSize = getU64At(raw, pos);
        const std::uint8_t flags = getU8At(raw, pos);
        s.loadable = flags & 1;
        s.executable = flags & 2;
        s.writable = flags & 4;
        const std::uint32_t len = getU32At(raw, pos);
        icp_assert(pos + len <= raw.size(), "SBF truncated");
        s.bytes.assign(raw.begin() + static_cast<std::ptrdiff_t>(pos),
                       raw.begin() +
                           static_cast<std::ptrdiff_t>(pos + len));
        pos += len;
        img.sections.push_back(std::move(s));
    }

    const std::uint32_t nsym = getU32At(raw, pos);
    for (std::uint32_t i = 0; i < nsym; ++i) {
        Symbol sym;
        sym.name = getString(raw, pos);
        sym.kind = static_cast<Symbol::Kind>(getU8At(raw, pos));
        sym.addr = getU64At(raw, pos);
        sym.size = getU64At(raw, pos);
        img.symbols.push_back(std::move(sym));
    }

    const std::uint32_t nrel = getU32At(raw, pos);
    for (std::uint32_t i = 0; i < nrel; ++i) {
        Relocation rel;
        rel.site = getU64At(raw, pos);
        rel.addend = static_cast<std::int64_t>(getU64At(raw, pos));
        img.relocs.push_back(rel);
    }

    const std::uint32_t nlrel = getU32At(raw, pos);
    for (std::uint32_t i = 0; i < nlrel; ++i) {
        LinkReloc rel;
        rel.site = getU64At(raw, pos);
        rel.symbol = getString(raw, pos);
        rel.addend = static_cast<std::int64_t>(getU64At(raw, pos));
        img.linkRelocs.push_back(std::move(rel));
    }
    return img;
}

} // namespace icp
