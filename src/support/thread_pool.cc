#include "support/thread_pool.hh"

#include <algorithm>
#include <exception>
#include <memory>

namespace icp
{

unsigned
effectiveThreads(unsigned requested)
{
    if (requested != 0)
        return requested;
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : hw;
}

/**
 * One parallelFor invocation. Indices are claimed from an atomic
 * counter by every participating thread (self-scheduling); the last
 * finisher wakes the caller. Kept alive by shared_ptr so stray
 * helper tasks that wake after completion see n exhausted and
 * return without touching freed state.
 */
struct ThreadPool::Job
{
    Job(std::size_t count, const std::function<void(std::size_t)> *f)
        : n(count), fn(f), errors(count)
    {
    }

    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> done{0};
    std::size_t n;
    const std::function<void(std::size_t)> *fn;
    std::vector<std::exception_ptr> errors;
    std::mutex mu;
    std::condition_variable cv;

    void
    runLoop()
    {
        while (true) {
            const std::size_t i =
                next.fetch_add(1, std::memory_order_relaxed);
            if (i >= n)
                return;
            try {
                (*fn)(i);
            } catch (...) {
                errors[i] = std::current_exception();
            }
            if (done.fetch_add(1, std::memory_order_acq_rel) + 1 ==
                n) {
                std::lock_guard<std::mutex> lock(mu);
                cv.notify_all();
            }
        }
    }

    void
    wait()
    {
        std::unique_lock<std::mutex> lock(mu);
        cv.wait(lock, [&] {
            return done.load(std::memory_order_acquire) == n;
        });
    }

    void
    rethrowFirst()
    {
        for (auto &e : errors) {
            if (e)
                std::rethrow_exception(e);
        }
    }
};

ThreadPool::ThreadPool(unsigned workers)
{
    workers_.reserve(workers);
    for (unsigned i = 0; i < workers; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        stop_ = true;
    }
    cv_.notify_all();
    for (auto &t : workers_)
        t.join();
}

ThreadPool &
ThreadPool::shared()
{
    // One worker per hardware thread; the caller participating in
    // parallelFor briefly oversubscribes by one, which is harmless.
    // At least one worker even on single-core hosts so the parallel
    // code paths genuinely run concurrently (and TSan sees them).
    static ThreadPool pool(std::max(1u, effectiveThreads(0)));
    return pool;
}

void
ThreadPool::workerLoop()
{
    while (true) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mu_);
            cv_.wait(lock, [&] { return stop_ || !queue_.empty(); });
            if (stop_ && queue_.empty())
                return;
            task = std::move(queue_.front());
            queue_.pop_front();
        }
        task();
    }
}

void
ThreadPool::submit(std::function<void()> task)
{
    if (workers_.empty()) {
        task();
        return;
    }
    {
        std::lock_guard<std::mutex> lock(mu_);
        queue_.emplace_back(std::move(task));
    }
    cv_.notify_one();
}

void
ThreadPool::parallelFor(std::size_t n, unsigned max_parallel,
                        const std::function<void(std::size_t)> &fn)
{
    if (n == 0)
        return;
    const unsigned par = static_cast<unsigned>(std::min<std::size_t>(
        n, std::max(1u, max_parallel)));
    if (par <= 1 || workers_.empty()) {
        for (std::size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }

    auto job = std::make_shared<Job>(n, &fn);
    const unsigned helpers = std::min(par - 1, workerCount());
    {
        std::lock_guard<std::mutex> lock(mu_);
        for (unsigned h = 0; h < helpers; ++h)
            queue_.emplace_back([job] { job->runLoop(); });
    }
    cv_.notify_all();

    // The caller is a full participant: even if every worker is
    // busy with other jobs, all indices complete on this thread.
    job->runLoop();
    job->wait();
    job->rethrowFirst();
}

} // namespace icp
