/**
 * @file
 * Static soundness verifier ("icp lint") for rewritten SBF images.
 * Takes the original image and a RewriteResult (whose manifest
 * records what the rewriter intended to emit) and checks, without
 * executing anything, that the rewritten artifacts uphold the
 * invariants the paper's design depends on: trampoline chains land
 * on relocated instruction boundaries (§3), displacements respect
 * each ISA's reach (Table 2), scratch registers are genuinely dead
 * (§7), cloned jump tables stay in bounds and decode to relocated
 * block heads (§5), address maps round-trip (§6), unwind coverage
 * survives, and rewritten function-pointer cells load to their
 * relocated targets (§5.2).
 */

#ifndef ICP_VERIFY_LINT_HH
#define ICP_VERIFY_LINT_HH

#include <cstdint>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "analysis/cfg.hh"
#include "binfmt/image.hh"
#include "rewrite/options.hh"
#include "verify/diagnostics.hh"

namespace icp
{

struct LintOptions
{
    /** Findings at or above this severity fail the lint. */
    Severity failOn = Severity::error;

    /**
     * Run the loader-backed function-pointer rule (maps the image
     * into simulated memory and applies runtime relocations).
     */
    bool checkLoadedImage = true;

    /**
     * Worker threads for the per-site rule checkers (trampoline
     * chains, clone entries, func-ptr cells): 0 = hardware
     * concurrency, 1 = serial. Findings are reported in the same
     * deterministic order for every value.
     */
    unsigned threads = 1;

    /** When non-empty, run only these rule ids (incremental lint). */
    std::set<std::string> onlyRules;

    /**
     * When non-empty, check only sites owned by these function
     * entries. Image-global rules (patch-overlap, addr-map
     * round-trips) ignore this filter.
     */
    std::set<Addr> onlyFunctions;

    /**
     * Original-image CFG to use for the liveness-backed rules
     * instead of the verifier's lazy rebuild. Borrowed; must outlive
     * the lint call. RewriteSession passes its own analysis here so
     * repeat lints never re-disassemble the original image.
     */
    const CfgModule *originalCfg = nullptr;

    /**
     * Consult the process-wide AnalysisCache for per-function
     * liveness (keyed like the rewriter's), so lint after rewrite
     * reuses the same fixpoints.
     */
    bool useAnalysisCache = true;
};

struct LintReport
{
    std::vector<Diagnostic> findings;

    // What was examined (for reporting; zero when skipped).
    std::uint64_t checkedTrampolines = 0;
    std::uint64_t checkedCloneEntries = 0;
    std::uint64_t checkedFuncPtrs = 0;
    std::uint64_t checkedRaPairs = 0;
    std::uint64_t checkedFdes = 0;
    std::uint64_t checkedDataDeps = 0; ///< audited read-set owners

    /**
     * True when the checker had to rebuild the original CFG itself
     * (LintOptions::originalCfg unset and a liveness-backed rule
     * ran). Incremental lint asserts this stays false.
     */
    bool rebuiltOriginalCfg = false;

    /** AnalysisCache liveness traffic from this lint run. */
    std::uint64_t livenessCacheHits = 0;
    std::uint64_t livenessCacheMisses = 0;

    bool clean() const { return findings.empty(); }

    unsigned
    countAtLeast(Severity floor) const
    {
        return icp::countAtLeast(findings, floor);
    }

    /** True when the report should fail a --fail-on=@p floor run. */
    bool failed(Severity floor) const
    {
        return countAtLeast(floor) > 0;
    }

    /** Findings table plus a one-line summary and checked counts. */
    std::string renderText() const;

    /** Machine-readable report: summary, counts, findings array. */
    std::string renderJson() const;
};

/**
 * Verify @p rw (produced by rewriting @p original) against its
 * manifest. The rewrite must have run with RewriteOptions::lint so
 * the manifest is populated; otherwise a single "lint-manifest"
 * finding is returned.
 */
LintReport lintRewrite(const BinaryImage &original,
                       const RewriteResult &rw,
                       const LintOptions &opts = LintOptions{});

/** Convert SBF container issues into lint diagnostics. */
std::vector<Diagnostic>
diagnosticsFromSbfIssues(const std::vector<SbfIssue> &issues);

/**
 * Convert on-disk AnalysisCache loading issues into warning-level
 * lint diagnostics. lintRewrite appends these automatically when the
 * rewrite was run with RewriteOptions::cachePath set.
 */
std::vector<Diagnostic>
diagnosticsFromCacheIssues(const std::vector<CacheFileIssue> &issues);

/**
 * Parse a report previously rendered with LintReport::renderJson()
 * (the "icp lint --json" output). Only the fields that participate
 * in diffReports matching — rule, severity, function — are required;
 * addresses and messages are carried when present. Returns nullopt
 * when the text is not such a report.
 */
std::optional<LintReport>
parseLintReportJson(const std::string &text);

/**
 * Per-function delta between two lint reports ("icp lint --diff"):
 * which findings are new in the second report (regressions) and
 * which disappeared (resolved). Findings match by (function, rule,
 * severity) with multiplicity — addresses differ between any two
 * binaries, so they do not participate in matching.
 */
struct LintDiff
{
    struct FuncDelta
    {
        std::string function; ///< empty = image-global findings
        std::vector<Diagnostic> regressions;
        std::vector<Diagnostic> resolved;
    };

    std::vector<FuncDelta> functions; ///< sorted by function name

    unsigned newErrors = 0;
    unsigned newWarnings = 0;
    unsigned newNotes = 0;
    unsigned resolvedErrors = 0;
    unsigned resolvedWarnings = 0;
    unsigned resolvedNotes = 0;

    bool
    hasRegressions(Severity floor) const
    {
        switch (floor) {
          case Severity::info:
            return newErrors + newWarnings + newNotes > 0;
          case Severity::warning:
            return newErrors + newWarnings > 0;
          case Severity::error:
            return newErrors > 0;
        }
        return false;
    }

    std::string renderText() const;
    std::string renderJson() const;
};

/** Compare two lint reports; @p before is the baseline. */
LintDiff diffReports(const LintReport &before,
                     const LintReport &after);

} // namespace icp

#endif // ICP_VERIFY_LINT_HH
