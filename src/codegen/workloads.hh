/**
 * @file
 * Workload-profile generators: deterministic ProgramSpecs whose
 * feature mixes stand in for the paper's evaluation subjects —
 * the 19 SPEC CPU 2017 benchmarks, Firefox's libxul.so, the Docker
 * (Go) executable, and Nvidia's libcuda.so driver (§8, §9).
 */

#ifndef ICP_CODEGEN_WORKLOADS_HH
#define ICP_CODEGEN_WORKLOADS_HH

#include <vector>

#include "codegen/spec.hh"

namespace icp
{

/**
 * The 19-benchmark SPEC-CPU-2017-like suite (627.cam4 is excluded,
 * as in the paper). Feature mixes per benchmark: gcc-like programs
 * are switch-heavy, C++-like ones throw and catch exceptions and
 * make virtual-style indirect calls, Fortran-like ones are loop and
 * arithmetic heavy with little indirect control flow.
 *
 * @param arch target ISA
 * @param pie  position independent (the paper's default runs use
 *             -no-pie; the Egalito comparison needs -pie)
 */
std::vector<ProgramSpec> specCpuSuite(Arch arch, bool pie);

/** Names of the benchmarks in suite order. */
std::vector<std::string> specCpuNames();

/** Firefox libxul.so analog: huge shared library, Rust metadata. */
ProgramSpec libxulProfile();

/** Docker analog: Go PIE with vtab, +1 pointers, GC unwinding. */
ProgramSpec dockerProfile();

/** libcuda.so analog: many tiny functions, dense tiny switches. */
ProgramSpec libcudaProfile();

/** A small fully featured program for tests and the quickstart. */
ProgramSpec microProfile(Arch arch, bool pie);

/**
 * Chrome analog: a browser-scale corpus of component-shaped function
 * clusters (renderer, net, gpu, ... as address-contiguous groups)
 * with per-component dispatch jump tables, cross-component calls
 * into other clusters' leaf pools, and address-taken callback sets.
 * Built with -fno-exceptions like the real thing. ~120k functions;
 * use with --shards to keep rewriting inside a bounded-memory
 * ceiling.
 */
ProgramSpec chromiumProfile();

/** Scaled-down chromium corpus (~1200 funcs) for tests and CI. */
ProgramSpec chromiumSmallProfile(Arch arch, bool pie);

/**
 * Shared-library corpus: @p count binaries that all link the same
 * static-lib core (~60% of each binary's functions, byte-identical
 * across the corpus) at different link addresses, each with a
 * distinct app-specific tail. The layout knobs (ProgramSpec
 * baseOffset / textAlign / textSizeFloor) pin every section at a
 * fixed distance from the link base, so a core function's code
 * bytes — including its pc-relative references to core callees and
 * its jump tables at the head of .rodata — are identical in every
 * binary while its absolute address differs per binary. That is the
 * cross-binary shape the content-addressed analysis cache serves
 * with rebase-on-hit: rewriting binary B against a cache primed by
 * binary A re-uses every core function's analysis.
 */
std::vector<ProgramSpec> libcommonCorpus(Arch arch,
                                         unsigned count = 4);

} // namespace icp

#endif // ICP_CODEGEN_WORKLOADS_HH
