# Empty dependencies file for icp_support.
# This may be replaced when dependencies are built.
