#include "sim/machine.hh"

#include <cstdio>

#include "support/logging.hh"

namespace icp
{

namespace
{

constexpr unsigned decode_cache_slots = 1u << 16;

} // namespace

const char *
faultKindName(FaultKind kind)
{
    switch (kind) {
      case FaultKind::none: return "none";
      case FaultKind::illegalInstr: return "illegal-instruction";
      case FaultKind::badFetch: return "bad-fetch";
      case FaultKind::badMemory: return "bad-memory";
      case FaultKind::badJump: return "bad-jump";
      case FaultKind::uncaughtException: return "uncaught-exception";
      case FaultKind::unwindFailure: return "unwind-failure";
      case FaultKind::goUnwindFailure: return "go-unwind-failure";
      case FaultKind::trapUnmapped: return "trap-unmapped";
      case FaultKind::stepLimit: return "step-limit";
      case FaultKind::stackOverflow: return "stack-overflow";
    }
    return "?";
}

std::string
RunResult::describe() const
{
    char buf[256];
    if (halted) {
        std::snprintf(buf, sizeof(buf),
            "halted: %llu instrs, %llu cycles, %llu traps, checksum "
            "0x%llx",
            static_cast<unsigned long long>(instructions),
            static_cast<unsigned long long>(cycles),
            static_cast<unsigned long long>(traps),
            static_cast<unsigned long long>(checksum));
    } else {
        std::snprintf(buf, sizeof(buf),
            "fault %s at 0x%llx after %llu instrs",
            faultKindName(fault),
            static_cast<unsigned long long>(faultPc),
            static_cast<unsigned long long>(instructions));
    }
    return buf;
}

Machine::Machine(Process &proc, const Config &cfg)
    : proc_(proc), cfg_(cfg),
      fdeIndex_(proc.module.image->fdeRecords()),
      icache_(cfg.icache)
{
    decodeCache_.resize(decode_cache_slots);
    for (const auto &sym : proc.module.image->symbols) {
        if (sym.kind != Symbol::Kind::function)
            continue;
        if (sym.name == "runtime.findfunc")
            findfuncEntry_ = proc.module.toLoaded(sym.addr);
        else if (sym.name == "runtime.pcvalue")
            pcvalueEntry_ = proc.module.toLoaded(sym.addr);
    }
}

void
Machine::reset()
{
    for (auto &r : regs_)
        r = 0;
    flags_ = 0;
    steps_ = 0;
    callsSinceGc_ = 0;
    subroutineDepth_ = 0;
    icache_.reset();
    result_ = RunResult();

    const auto &mod = proc_.module;
    regs_[static_cast<unsigned>(Reg::sp)] = proc_.stackTop - 64;
    if (mod.image->archInfo().hasToc) {
        regs_[static_cast<unsigned>(Reg::toc)] =
            mod.toLoaded(mod.image->tocBase);
    }
    pc_ = mod.toLoaded(mod.image->entry);
    if (cfg_.recordTransferTargets)
        result_.transferTargets[mod.image->entry]++;
    if (mod.image->archInfo().hasLinkRegister) {
        regs_[static_cast<unsigned>(Reg::lr)] = magic_exit;
    } else {
        regs_[static_cast<unsigned>(Reg::sp)] -= 8;
        proc_.mem.write(regs_[static_cast<unsigned>(Reg::sp)], 8,
                        magic_exit);
    }
    running_ = true;
}

Addr
Machine::translatedPrefPc(Addr loadedPc) const
{
    const Addr pref = proc_.module.toPref(loadedPc);
    return rt_ ? rt_->translateRaPref(pref) : pref;
}

bool
Machine::fetch(Addr pc, Instruction &in)
{
    DecodeSlot &slot = decodeCache_[(pc >> 0) & (decode_cache_slots - 1)];
    if (slot.addr == pc) {
        in = slot.in;
        return true;
    }
    std::size_t avail = 0;
    const std::uint8_t *bytes = proc_.mem.peek(pc, avail);
    if (!bytes)
        return false;
    const auto &arch = proc_.module.image->archInfo();
    std::uint8_t buf[16];
    if (avail < arch.maxInstrLen) {
        // Instruction may span a page boundary; copy through.
        std::vector<std::uint8_t> tmp;
        if (!proc_.mem.readBlock(pc, arch.maxInstrLen, tmp)) {
            // Partial page at the very end of mappings: try what we
            // have.
            for (std::size_t i = 0; i < avail; ++i)
                buf[i] = bytes[i];
            if (!arch.codec->decode(buf, avail, pc, in))
                return in.op != Opcode::Illegal;
            slot.addr = pc;
            slot.in = in;
            return true;
        }
        for (unsigned i = 0; i < arch.maxInstrLen; ++i)
            buf[i] = tmp[i];
        bytes = buf;
        avail = arch.maxInstrLen;
    }
    if (!arch.codec->decode(bytes, avail, pc, in))
        return false;
    slot.addr = pc;
    slot.in = in;
    return true;
}

void
Machine::fault(FaultKind kind, Addr pc)
{
    if (subroutineDepth_ > 0) {
        // Subroutine faults are reported to the GC walker, which
        // turns them into goUnwindFailure at its own level.
        running_ = false;
        result_.fault = kind;
        result_.faultPc = pc;
        return;
    }
    running_ = false;
    result_.halted = false;
    result_.fault = kind;
    result_.faultPc = pc;
}

bool
Machine::evalCond(Cond cond) const
{
    switch (cond) {
      case Cond::eq: return flags_ == 0;
      case Cond::ne: return flags_ != 0;
      case Cond::lt: return flags_ < 0;
      case Cond::le: return flags_ <= 0;
      case Cond::gt: return flags_ > 0;
      case Cond::ge: return flags_ >= 0;
      default: icp_panic("bad condition");
    }
}

void
Machine::doBranchTo(Addr target)
{
    pc_ = target;
    result_.cycles += cfg_.cost.takenBranch;
    if (cfg_.recordTransferTargets)
        result_.transferTargets[proc_.module.toPref(target)]++;
}

void
Machine::doCall(Addr target, Addr returnAddr)
{
    // Go safepoint: the GC stack walk happens at the call site,
    // while the caller's frame is fully formed.
    if (cfg_.goGcEveryCalls != 0 && subroutineDepth_ == 0 &&
        ++callsSinceGc_ >= cfg_.goGcEveryCalls) {
        callsSinceGc_ = 0;
        gcWalk();
        if (!running_)
            return;
    }
    const auto &arch = proc_.module.image->archInfo();
    if (arch.hasLinkRegister) {
        regs_[static_cast<unsigned>(Reg::lr)] = returnAddr;
    } else {
        auto &sp = regs_[static_cast<unsigned>(Reg::sp)];
        sp -= 8;
        if (sp < proc_.stackLimit) {
            fault(FaultKind::stackOverflow, pc_);
            return;
        }
        if (!proc_.mem.write(sp, 8, returnAddr)) {
            fault(FaultKind::badMemory, pc_);
            return;
        }
    }
    result_.cycles += cfg_.cost.callExtra;
    pc_ = target;
    if (cfg_.recordTransferTargets)
        result_.transferTargets[proc_.module.toPref(target)]++;
}

void
Machine::doRet()
{
    const auto &arch = proc_.module.image->archInfo();
    Addr target;
    if (arch.hasLinkRegister) {
        target = regs_[static_cast<unsigned>(Reg::lr)];
    } else {
        auto &sp = regs_[static_cast<unsigned>(Reg::sp)];
        std::uint64_t v;
        if (!proc_.mem.read(sp, 8, v)) {
            fault(FaultKind::badMemory, pc_);
            return;
        }
        sp += 8;
        target = v;
    }
    result_.cycles += cfg_.cost.retExtra;
    pc_ = target;
}

void
Machine::doTrap(Addr pc)
{
    result_.traps++;
    result_.cycles += cfg_.cost.trap;
    if (!rt_) {
        fault(FaultKind::trapUnmapped, pc);
        return;
    }
    const Addr pref = proc_.module.toPref(pc);
    if (auto target = rt_->trapTarget(pref)) {
        pc_ = proc_.module.toLoaded(*target);
        return;
    }
    fault(FaultKind::trapUnmapped, pc);
}

bool
Machine::unwindStep(Frame &frame, Addr &raOut, const FdeRecord *&fde)
{
    const Addr prefPc = translatedPrefPc(frame.pc);
    result_.unwindSteps++;
    result_.cycles += cfg_.compiledUnwinding
        ? cfg_.cost.unwindStepCompiled
        : cfg_.cost.unwindStep;
    if (rt_ && rt_->hasRaMap())
        result_.cycles += cfg_.cost.raTranslate;

    fde = fdeIndex_.find(prefPc);
    if (!fde)
        return false;

    const auto &arch = proc_.module.image->archInfo();
    if (fde->raOnStack) {
        std::uint64_t ra;
        if (!proc_.mem.read(frame.sp + static_cast<std::uint64_t>(
                                fde->raOffset), 8, ra)) {
            return false;
        }
        raOut = ra;
        frame.sp += fde->frameSize + (arch.hasLinkRegister ? 0 : 8);
    } else {
        // Leaf frame: RA still in the link register. Only valid for
        // the innermost frame; the caller enforces this.
        raOut = regs_[static_cast<unsigned>(Reg::lr)];
    }
    return true;
}

void
Machine::doThrow(Addr pc)
{
    result_.exceptionsThrown++;
    Frame frame{pc, regs_[static_cast<unsigned>(Reg::sp)]};
    unsigned depth = 0;

    while (true) {
        const Addr prefPc = translatedPrefPc(frame.pc);
        const FdeRecord *fde = fdeIndex_.find(prefPc);
        result_.unwindSteps++;
        result_.cycles += cfg_.compiledUnwinding
            ? cfg_.cost.unwindStepCompiled
            : cfg_.cost.unwindStep;
        if (rt_ && rt_->hasRaMap())
            result_.cycles += cfg_.cost.raTranslate;
        if (!fde) {
            fault(FaultKind::unwindFailure, frame.pc);
            return;
        }
        // For outer frames the frame pc is a return address, which
        // points just past the call; probe the call site itself.
        const Offset off = prefPc - fde->start - (depth > 0 ? 1 : 0);
        if (auto lp = fde->landingPadFor(off)) {
            // Resume at the original landing pad: in a rewritten
            // binary this block carries a trampoline (catch blocks
            // are CFL blocks).
            regs_[static_cast<unsigned>(Reg::sp)] = frame.sp;
            regs_[static_cast<unsigned>(Reg::r1)] = 1; // exception obj
            pc_ = proc_.module.toLoaded(fde->start + *lp);
            flags_ = 0;
            return;
        }
        // Pop this frame, restoring callee-saved registers as DWARF
        // CFI would.
        const auto &arch = proc_.module.image->archInfo();
        if (fde->savesCalleeSaved) {
            std::uint64_t v;
            if (proc_.mem.read(frame.sp + 0, 8, v))
                regs_[static_cast<unsigned>(Reg::r8)] = v;
            if (proc_.mem.read(frame.sp + 8, 8, v))
                regs_[static_cast<unsigned>(Reg::r9)] = v;
            if (proc_.mem.read(frame.sp + 16, 8, v))
                regs_[static_cast<unsigned>(Reg::r6)] = v;
        }
        Addr ra;
        if (fde->raOnStack) {
            std::uint64_t v;
            if (!proc_.mem.read(frame.sp + static_cast<std::uint64_t>(
                                    fde->raOffset), 8, v)) {
                fault(FaultKind::unwindFailure, frame.pc);
                return;
            }
            ra = v;
            frame.sp += fde->frameSize + (arch.hasLinkRegister ? 0 : 8);
        } else {
            if (depth > 0) {
                fault(FaultKind::unwindFailure, frame.pc);
                return;
            }
            ra = regs_[static_cast<unsigned>(Reg::lr)];
        }
        if (ra == magic_exit) {
            fault(FaultKind::uncaughtException, pc);
            return;
        }
        frame.pc = ra;
        ++depth;
    }
}

std::optional<std::uint64_t>
Machine::runSubroutine(Addr entryLoaded, std::uint64_t arg)
{
    // Snapshot register state; the subroutine runs on a scratch area
    // below the current stack pointer.
    std::uint64_t savedRegs[num_regs];
    for (unsigned i = 0; i < num_regs; ++i)
        savedRegs[i] = regs_[i];
    const int savedFlags = flags_;
    const Addr savedPc = pc_;
    const bool savedRunning = running_;
    const FaultKind savedFault = result_.fault;
    const Addr savedFaultPc = result_.faultPc;

    const auto &arch = proc_.module.image->archInfo();
    Addr sp = (regs_[static_cast<unsigned>(Reg::sp)] - 512) &
              ~static_cast<Addr>(15);
    // Go-ABI analog: argument on the stack.
    if (!proc_.mem.write(sp + 8, 8, arg))
        return std::nullopt;
    if (arch.hasLinkRegister) {
        regs_[static_cast<unsigned>(Reg::lr)] = magic_subret;
    } else {
        sp -= 8;
        if (!proc_.mem.write(sp, 8, magic_subret))
            return std::nullopt;
    }
    regs_[static_cast<unsigned>(Reg::sp)] = sp;
    pc_ = entryLoaded;
    if (cfg_.recordTransferTargets)
        result_.transferTargets[proc_.module.toPref(entryLoaded)]++;
    running_ = true;
    ++subroutineDepth_;

    std::optional<std::uint64_t> ret;
    std::uint64_t subSteps = 0;
    constexpr std::uint64_t max_sub_steps = 2'000'000;
    while (running_) {
        if (pc_ == magic_subret) {
            ret = regs_[static_cast<unsigned>(Reg::r0)];
            break;
        }
        if (++subSteps > max_sub_steps)
            break;
        Instruction in;
        if (!fetch(pc_, in)) {
            break;
        }
        if (icache_.access(pc_))
            result_.cycles += cfg_.cost.icacheMiss;
        result_.instructions++;
        result_.cycles += cfg_.cost.base;
        execute(in);
    }

    --subroutineDepth_;
    for (unsigned i = 0; i < num_regs; ++i)
        regs_[i] = savedRegs[i];
    flags_ = savedFlags;
    pc_ = savedPc;
    running_ = savedRunning;
    result_.fault = savedFault;
    result_.faultPc = savedFaultPc;
    return ret;
}

void
Machine::gcWalk()
{
    result_.gcWalks++;
    if (findfuncEntry_ == invalid_addr)
        return;

    Frame frame{pc_, regs_[static_cast<unsigned>(Reg::sp)]};
    unsigned depth = 0;
    while (true) {
        // The Go runtime consults findfunc/pcvalue with the raw frame
        // pc; in a rewritten binary these point into .instr and the
        // instrumented findfunc entry must translate them.
        auto found = runSubroutine(findfuncEntry_, frame.pc);
        if (!found || *found == ~0ULL) {
            fault(FaultKind::goUnwindFailure, frame.pc);
            return;
        }
        if (pcvalueEntry_ != invalid_addr) {
            auto pcv = runSubroutine(pcvalueEntry_, frame.pc);
            if (!pcv || *pcv == ~0ULL) {
                fault(FaultKind::goUnwindFailure, frame.pc);
                return;
            }
        }

        // Pop the frame (native walker with RA translation).
        Addr ra;
        const FdeRecord *fde;
        Frame next = frame;
        if (!unwindStep(next, ra, fde)) {
            fault(FaultKind::goUnwindFailure, frame.pc);
            return;
        }
        if (!fde->raOnStack && depth > 0) {
            fault(FaultKind::goUnwindFailure, frame.pc);
            return;
        }
        if (ra == magic_exit)
            return; // reached the bottom
        next.pc = ra;
        frame = next;
        ++depth;
        if (depth > 4096) {
            fault(FaultKind::goUnwindFailure, frame.pc);
            return;
        }
    }
}

void
Machine::doCallRt(const Instruction &in)
{
    result_.rtCalls++;
    result_.cycles += cfg_.cost.rtService;
    const auto imm = static_cast<std::uint32_t>(in.imm);
    switch (rtServiceOf(imm)) {
      case RtService::nop:
        break;
      case RtService::count: {
        const std::uint32_t idx = rtServiceArg(imm);
        if (result_.counters.size() <= idx)
            result_.counters.resize(idx + 1, 0);
        result_.counters[idx]++;
        break;
      }
      case RtService::raXlatStackSlot: {
        const std::uint32_t slot = rtServiceArg(imm);
        const Addr addr = regs_[static_cast<unsigned>(Reg::sp)] +
                          std::uint64_t{slot} * 8;
        std::uint64_t v;
        if (!proc_.mem.read(addr, 8, v)) {
            fault(FaultKind::badMemory, in.addr);
            return;
        }
        if (rt_) {
            const Addr pref = proc_.module.toPref(v);
            const Addr xlat = rt_->translateRaPref(pref);
            v = proc_.module.toLoaded(xlat);
            result_.cycles += cfg_.cost.raTranslate;
        }
        if (!proc_.mem.write(addr, 8, v)) {
            fault(FaultKind::badMemory, in.addr);
            return;
        }
        break;
      }
      default:
        fault(FaultKind::illegalInstr, in.addr);
        break;
    }
}

void
Machine::execute(const Instruction &in)
{
    auto &regs = regs_;
    auto reg = [&](Reg r) -> std::uint64_t & {
        return regs[static_cast<unsigned>(r)];
    };
    const Addr next = in.addr + in.length;
    pc_ = next; // default fall-through

    switch (in.op) {
      case Opcode::Nop:
        break;
      case Opcode::Trap:
        doTrap(in.addr);
        break;
      case Opcode::Halt:
        running_ = false;
        result_.halted = true;
        result_.checksum = reg(Reg::r0);
        break;

      case Opcode::MovImm:
        if (proc_.module.image->archInfo().fixedLength) {
            const std::uint64_t chunk =
                static_cast<std::uint64_t>(in.imm & 0xffff)
                << in.movShift;
            if (in.movKeep) {
                reg(in.rd) = (reg(in.rd) &
                              ~(0xffffULL << in.movShift)) | chunk;
            } else {
                reg(in.rd) = chunk;
            }
        } else {
            reg(in.rd) = static_cast<std::uint64_t>(in.imm);
        }
        break;
      case Opcode::MovReg: reg(in.rd) = reg(in.rs1); break;
      case Opcode::Add: reg(in.rd) += reg(in.rs1); break;
      case Opcode::Sub: reg(in.rd) -= reg(in.rs1); break;
      case Opcode::Mul:
        reg(in.rd) *= reg(in.rs1);
        result_.cycles += cfg_.cost.mulExtra;
        break;
      case Opcode::Xor: reg(in.rd) ^= reg(in.rs1); break;
      case Opcode::AddImm:
        reg(in.rd) += static_cast<std::uint64_t>(in.imm);
        break;
      case Opcode::ShlImm:
        reg(in.rd) <<= (in.imm & 63);
        break;
      case Opcode::ShrImm:
        reg(in.rd) >>= (in.imm & 63);
        break;
      case Opcode::Cmp: {
        const auto a = static_cast<std::int64_t>(reg(in.rs1));
        const auto b = static_cast<std::int64_t>(reg(in.rs2));
        flags_ = a < b ? -1 : (a == b ? 0 : 1);
        break;
      }
      case Opcode::CmpImm: {
        const auto a = static_cast<std::int64_t>(reg(in.rs1));
        flags_ = a < in.imm ? -1 : (a == in.imm ? 0 : 1);
        break;
      }

      case Opcode::Load:
      case Opcode::LoadSz: {
        const Addr ea = reg(in.rs1) + static_cast<std::uint64_t>(in.imm);
        const unsigned size = in.op == Opcode::Load ? 8 : in.memSize;
        std::uint64_t v;
        if (!proc_.mem.read(ea, size, v)) {
            fault(FaultKind::badMemory, in.addr);
            return;
        }
        if (in.op == Opcode::LoadSz && in.signedLoad && size < 8) {
            const std::uint64_t m = 1ULL << (size * 8 - 1);
            v = (v ^ m) - m;
        }
        reg(in.rd) = v;
        result_.cycles += cfg_.cost.memExtra;
        break;
      }
      case Opcode::LoadIdx: {
        const Addr ea = reg(in.rs1) + reg(in.rs2) * in.memSize +
                        static_cast<std::uint64_t>(in.imm);
        std::uint64_t v;
        if (!proc_.mem.read(ea, in.memSize, v)) {
            fault(FaultKind::badMemory, in.addr);
            return;
        }
        if (in.signedLoad && in.memSize < 8) {
            const std::uint64_t m = 1ULL << (in.memSize * 8 - 1);
            v = (v ^ m) - m;
        }
        reg(in.rd) = v;
        result_.cycles += cfg_.cost.memExtra;
        break;
      }
      case Opcode::Store:
      case Opcode::StoreSz: {
        const Addr ea = reg(in.rs1) + static_cast<std::uint64_t>(in.imm);
        const unsigned size = in.op == Opcode::Store ? 8 : in.memSize;
        if (!proc_.mem.write(ea, size, reg(in.rs2))) {
            fault(FaultKind::badMemory, in.addr);
            return;
        }
        result_.cycles += cfg_.cost.memExtra;
        break;
      }

      case Opcode::Lea:
      case Opcode::AdrPage:
        reg(in.rd) = in.target;
        break;
      case Opcode::AddisToc:
        reg(in.rd) = reg(Reg::toc) +
                     (static_cast<std::uint64_t>(in.imm) << 16);
        break;

      case Opcode::Jmp:
        doBranchTo(in.target);
        break;
      case Opcode::JmpCond:
        if (evalCond(in.cond))
            doBranchTo(in.target);
        break;
      case Opcode::Call:
        doCall(in.target, next);
        break;
      case Opcode::JmpInd:
        doBranchTo(reg(in.rs1));
        break;
      case Opcode::JmpTar:
        doBranchTo(reg(Reg::tar));
        break;
      case Opcode::MoveToTar:
        reg(Reg::tar) = reg(in.rs1);
        break;
      case Opcode::CallInd:
        doCall(reg(in.rs1), next);
        break;
      case Opcode::CallIndMem: {
        const Addr ea = reg(in.rs1) + static_cast<std::uint64_t>(in.imm);
        std::uint64_t v;
        if (!proc_.mem.read(ea, 8, v)) {
            fault(FaultKind::badMemory, in.addr);
            return;
        }
        result_.cycles += cfg_.cost.memExtra;
        doCall(v, next);
        break;
      }
      case Opcode::Ret:
        doRet();
        break;

      case Opcode::PushImm: {
        auto &sp = reg(Reg::sp);
        sp -= 8;
        if (sp < proc_.stackLimit) {
            fault(FaultKind::stackOverflow, in.addr);
            return;
        }
        if (!proc_.mem.write(sp, 8,
                             static_cast<std::uint64_t>(in.imm))) {
            fault(FaultKind::badMemory, in.addr);
            return;
        }
        result_.cycles += cfg_.cost.memExtra;
        break;
      }
      case Opcode::Push: {
        auto &sp = reg(Reg::sp);
        sp -= 8;
        if (sp < proc_.stackLimit) {
            fault(FaultKind::stackOverflow, in.addr);
            return;
        }
        if (!proc_.mem.write(sp, 8, reg(in.rs1))) {
            fault(FaultKind::badMemory, in.addr);
            return;
        }
        result_.cycles += cfg_.cost.memExtra;
        break;
      }
      case Opcode::Pop: {
        auto &sp = reg(Reg::sp);
        std::uint64_t v;
        if (!proc_.mem.read(sp, 8, v)) {
            fault(FaultKind::badMemory, in.addr);
            return;
        }
        sp += 8;
        reg(in.rd) = v;
        result_.cycles += cfg_.cost.memExtra;
        break;
      }

      case Opcode::Throw:
        doThrow(in.addr);
        break;
      case Opcode::ThrowRa: {
        // Call-emulation throw: the unwind pc was materialized
        // position-correctly (x64: pushed; fixed ISAs: r13).
        std::uint64_t pc0;
        if (proc_.module.image->archInfo().hasLinkRegister) {
            pc0 = reg(Reg::r13);
        } else {
            auto &sp = reg(Reg::sp);
            if (!proc_.mem.read(sp, 8, pc0)) {
                fault(FaultKind::badMemory, in.addr);
                return;
            }
            sp += 8;
        }
        doThrow(pc0);
        break;
      }
      case Opcode::CallRt:
        doCallRt(in);
        break;

      case Opcode::Illegal:
      default:
        fault(FaultKind::illegalInstr, in.addr);
        break;
    }
}

void
Machine::start()
{
    reset();
}

void
Machine::flushDecodeCache()
{
    for (auto &slot : decodeCache_)
        slot.addr = invalid_addr;
    icache_.reset();
}

RunResult
Machine::runFor(std::uint64_t steps)
{
    std::uint64_t executed = 0;
    while (running_ && executed < steps) {
        if (pc_ == magic_exit) {
            running_ = false;
            result_.halted = true;
            result_.checksum = regs_[static_cast<unsigned>(Reg::r0)];
            break;
        }
        if (++steps_ > cfg_.maxSteps) {
            fault(FaultKind::stepLimit, pc_);
            break;
        }
        Instruction in;
        if (!fetch(pc_, in)) {
            fault(in.valid() ? FaultKind::badFetch
                             : FaultKind::illegalInstr, pc_);
            break;
        }
        if (icache_.access(pc_))
            result_.cycles += cfg_.cost.icacheMiss;
        result_.instructions++;
        result_.cycles += cfg_.cost.base;
        if (cfg_.traceHook)
            cfg_.traceHook(in);
        execute(in);
        ++executed;
    }
    result_.icacheAccesses = icache_.accesses();
    result_.icacheMisses = icache_.misses();
    return result_;
}

RunResult
Machine::run()
{
    start();
    return runFor(~std::uint64_t{0});
}

} // namespace icp
