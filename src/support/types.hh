/**
 * @file
 * Fundamental type aliases shared by every icp module.
 */

#ifndef ICP_SUPPORT_TYPES_HH
#define ICP_SUPPORT_TYPES_HH

#include <cstdint>
#include <cstddef>

namespace icp
{

/** A simulated virtual address inside an SBF image. */
using Addr = std::uint64_t;

/** A byte offset within a section or image. */
using Offset = std::uint64_t;

/** Simulated machine cycles, the unit of all overhead measurements. */
using Cycles = std::uint64_t;

/** Sentinel for "no address". */
inline constexpr Addr invalid_addr = ~static_cast<Addr>(0);

} // namespace icp

#endif // ICP_SUPPORT_TYPES_HH
