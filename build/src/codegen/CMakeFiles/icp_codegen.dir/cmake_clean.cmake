file(REMOVE_RECURSE
  "CMakeFiles/icp_codegen.dir/compiler.cc.o"
  "CMakeFiles/icp_codegen.dir/compiler.cc.o.d"
  "CMakeFiles/icp_codegen.dir/workloads.cc.o"
  "CMakeFiles/icp_codegen.dir/workloads.cc.o.d"
  "libicp_codegen.a"
  "libicp_codegen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/icp_codegen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
