file(REMOVE_RECURSE
  "CMakeFiles/test_jump_table_unit.dir/test_jump_table_unit.cc.o"
  "CMakeFiles/test_jump_table_unit.dir/test_jump_table_unit.cc.o.d"
  "test_jump_table_unit"
  "test_jump_table_unit.pdb"
  "test_jump_table_unit[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_jump_table_unit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
