/**
 * @file
 * Small statistics helpers used by the experiment harness: min, max,
 * mean, and percentile over sample vectors, plus percent formatting.
 */

#ifndef ICP_SUPPORT_STATS_HH
#define ICP_SUPPORT_STATS_HH

#include <string>
#include <vector>

namespace icp
{

/** Accumulates double samples and reports summary statistics. */
class SampleStats
{
  public:
    void add(double v);

    std::size_t count() const { return samples_.size(); }
    bool empty() const { return samples_.empty(); }

    double min() const;
    double max() const;
    double mean() const;
    /** p in [0, 100]; linear interpolation between order statistics. */
    double percentile(double p) const;

    const std::vector<double> &samples() const { return samples_; }

  private:
    std::vector<double> samples_;
};

/** Render v (e.g. 0.0123) as a percent string "1.23%". */
std::string formatPercent(double v, int decimals = 2);

/** Relative difference (b - a) / a. */
double relativeDelta(double a, double b);

} // namespace icp

#endif // ICP_SUPPORT_STATS_HH
