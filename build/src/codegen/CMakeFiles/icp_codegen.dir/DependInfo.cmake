
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/codegen/compiler.cc" "src/codegen/CMakeFiles/icp_codegen.dir/compiler.cc.o" "gcc" "src/codegen/CMakeFiles/icp_codegen.dir/compiler.cc.o.d"
  "/root/repo/src/codegen/workloads.cc" "src/codegen/CMakeFiles/icp_codegen.dir/workloads.cc.o" "gcc" "src/codegen/CMakeFiles/icp_codegen.dir/workloads.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/binfmt/CMakeFiles/icp_binfmt.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/icp_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/icp_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
