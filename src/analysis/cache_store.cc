/**
 * @file
 * AnalysisCache::save()/load(): the cache-file format documented in
 * cache_store.hh. Entries serialize through an append-only byte
 * writer and decode through a bounds-latched reader; every decode
 * path validates enum ranges so a corrupt payload can only ever drop
 * its own entry, never read out of bounds or poison the cache.
 */

#include "analysis/cache_store.hh"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>

#include "analysis/cache.hh"
#include "isa/bytes.hh"

namespace icp
{

namespace
{

// --- low-level byte IO ----------------------------------------------------

void
putString(std::vector<std::uint8_t> &out, const std::string &s)
{
    putU32(out, static_cast<std::uint32_t>(s.size()));
    out.insert(out.end(), s.begin(), s.end());
}

/**
 * Bounds-latched sequential reader: the first out-of-range read
 * flips failed() and every later read returns zeros, so decoders can
 * run straight through and check once at the end.
 */
class ByteReader
{
  public:
    ByteReader(const std::uint8_t *data, std::size_t size)
        : data_(data), size_(size)
    {
    }

    bool failed() const { return failed_; }
    std::size_t pos() const { return pos_; }
    std::size_t remaining() const { return size_ - pos_; }

    std::uint8_t
    u8()
    {
        if (!need(1))
            return 0;
        return data_[pos_++];
    }

    std::uint32_t
    u32()
    {
        if (!need(4))
            return 0;
        const std::uint32_t v = getU32(data_ + pos_);
        pos_ += 4;
        return v;
    }

    std::uint64_t
    u64()
    {
        if (!need(8))
            return 0;
        const std::uint64_t v = getU64(data_ + pos_);
        pos_ += 8;
        return v;
    }

    std::string
    str()
    {
        const std::uint32_t len = u32();
        if (!need(len))
            return {};
        std::string s(reinterpret_cast<const char *>(data_ + pos_),
                      len);
        pos_ += len;
        return s;
    }

    const std::uint8_t *
    blob(std::size_t len)
    {
        if (!need(len))
            return nullptr;
        const std::uint8_t *p = data_ + pos_;
        pos_ += len;
        return p;
    }

  private:
    bool
    need(std::uint64_t len)
    {
        if (failed_ || pos_ + len > size_) {
            failed_ = true;
            return false;
        }
        return true;
    }

    const std::uint8_t *data_;
    std::size_t size_;
    std::size_t pos_ = 0;
    bool failed_ = false;
};

// --- payload encoders -----------------------------------------------------

void
encodeInstruction(std::vector<std::uint8_t> &out,
                  const Instruction &in)
{
    putU8(out, static_cast<std::uint8_t>(in.op));
    putU8(out, static_cast<std::uint8_t>(in.rd));
    putU8(out, static_cast<std::uint8_t>(in.rs1));
    putU8(out, static_cast<std::uint8_t>(in.rs2));
    putU8(out, static_cast<std::uint8_t>(in.cond));
    putU8(out, in.memSize);
    putU8(out, in.signedLoad ? 1 : 0);
    putU8(out, in.movShift);
    putU8(out, in.movKeep ? 1 : 0);
    putU8(out, in.formHint);
    putU64(out, static_cast<std::uint64_t>(in.imm));
    putU64(out, in.target);
    putU64(out, in.addr);
    putU32(out, in.length);
}

void
encodeJumpTable(std::vector<std::uint8_t> &out, const JumpTable &jt)
{
    putU64(out, jt.jumpAddr);
    putU64(out, jt.tableAddr);
    putU32(out, jt.entrySize);
    putU8(out, jt.signedEntries ? 1 : 0);
    putU32(out, jt.shift);
    putU8(out, jt.base.has_value() ? 1 : 0);
    putU64(out, jt.base.value_or(0));
    putU32(out, static_cast<std::uint32_t>(jt.baseDefAddrs.size()));
    for (Addr a : jt.baseDefAddrs)
        putU64(out, a);
    putU64(out, jt.loadAddr);
    putU32(out, jt.entryCount);
    putU32(out, static_cast<std::uint32_t>(jt.targets.size()));
    for (Addr a : jt.targets)
        putU64(out, a);
    putU8(out, jt.embeddedInCode ? 1 : 0);
}

void
encodeBlock(std::vector<std::uint8_t> &out, const Block &block)
{
    putU64(out, block.start);
    putU64(out, block.end);
    std::uint8_t flags = 0;
    if (block.endsInUnresolvedIndirect)
        flags |= 1;
    if (block.endsFunction)
        flags |= 2;
    if (block.callTarget.has_value())
        flags |= 4;
    putU8(out, flags);
    putU64(out, block.callTarget.value_or(0));
    putU32(out, static_cast<std::uint32_t>(block.insns.size()));
    for (const Instruction &in : block.insns)
        encodeInstruction(out, in);
    putU32(out, static_cast<std::uint32_t>(block.succs.size()));
    for (const Edge &e : block.succs) {
        putU64(out, e.target);
        putU8(out, static_cast<std::uint8_t>(e.kind));
    }
}

std::vector<std::uint8_t>
encodeFunction(const Function &func)
{
    std::vector<std::uint8_t> out;
    putString(out, func.name);
    putU64(out, func.entry);
    putU64(out, func.end);
    putU8(out, static_cast<std::uint8_t>(func.failure));
    putU32(out, static_cast<std::uint32_t>(func.landingPads.size()));
    for (Addr a : func.landingPads)
        putU64(out, a);
    putU32(out, static_cast<std::uint32_t>(
                    func.indirectTailCalls.size()));
    for (Addr a : func.indirectTailCalls)
        putU64(out, a);
    putU32(out, static_cast<std::uint32_t>(func.jumpTables.size()));
    for (const JumpTable &jt : func.jumpTables)
        encodeJumpTable(out, jt);
    putU32(out, static_cast<std::uint32_t>(func.blocks.size()));
    for (const auto &[start, block] : func.blocks)
        encodeBlock(out, block);
    return out;
}

std::vector<std::uint8_t>
encodeLiveness(const LivenessResult &live)
{
    std::vector<std::uint8_t> out;
    putU32(out, static_cast<std::uint32_t>(live.liveIn.size()));
    for (const auto &[addr, regs] : live.liveIn) {
        putU64(out, addr);
        putU32(out, regs.raw());
    }
    return out;
}

// --- payload decoders -----------------------------------------------------

bool
validReg(std::uint8_t v)
{
    return v < num_regs || v == static_cast<std::uint8_t>(Reg::none);
}

bool
decodeInstruction(ByteReader &rd, Instruction &in)
{
    const std::uint8_t op = rd.u8();
    const std::uint8_t vrd = rd.u8();
    const std::uint8_t rs1 = rd.u8();
    const std::uint8_t rs2 = rd.u8();
    const std::uint8_t cond = rd.u8();
    in.memSize = rd.u8();
    in.signedLoad = rd.u8() != 0;
    in.movShift = rd.u8();
    in.movKeep = rd.u8() != 0;
    in.formHint = rd.u8();
    in.imm = static_cast<std::int64_t>(rd.u64());
    in.target = rd.u64();
    in.addr = rd.u64();
    in.length = rd.u32();
    if (rd.failed())
        return false;
    if (op >= static_cast<std::uint8_t>(Opcode::NumOpcodes))
        return false;
    if (!validReg(vrd) || !validReg(rs1) || !validReg(rs2))
        return false;
    if (cond > static_cast<std::uint8_t>(Cond::ge) &&
        cond != static_cast<std::uint8_t>(Cond::none))
        return false;
    in.op = static_cast<Opcode>(op);
    in.rd = static_cast<Reg>(vrd);
    in.rs1 = static_cast<Reg>(rs1);
    in.rs2 = static_cast<Reg>(rs2);
    in.cond = static_cast<Cond>(cond);
    return true;
}

bool
decodeJumpTable(ByteReader &rd, JumpTable &jt)
{
    jt.jumpAddr = rd.u64();
    jt.tableAddr = rd.u64();
    jt.entrySize = rd.u32();
    jt.signedEntries = rd.u8() != 0;
    jt.shift = rd.u32();
    const bool has_base = rd.u8() != 0;
    const Addr base = rd.u64();
    if (has_base)
        jt.base = base;
    const std::uint32_t ndefs = rd.u32();
    if (ndefs > rd.remaining() / 8)
        return false;
    jt.baseDefAddrs.reserve(ndefs);
    for (std::uint32_t i = 0; i < ndefs; ++i)
        jt.baseDefAddrs.push_back(rd.u64());
    jt.loadAddr = rd.u64();
    jt.entryCount = rd.u32();
    const std::uint32_t ntargets = rd.u32();
    if (ntargets > rd.remaining() / 8)
        return false;
    jt.targets.reserve(ntargets);
    for (std::uint32_t i = 0; i < ntargets; ++i)
        jt.targets.push_back(rd.u64());
    jt.embeddedInCode = rd.u8() != 0;
    return !rd.failed();
}

bool
decodeBlock(ByteReader &rd, Block &block)
{
    block.start = rd.u64();
    block.end = rd.u64();
    const std::uint8_t flags = rd.u8();
    if (flags > 7)
        return false;
    block.endsInUnresolvedIndirect = (flags & 1) != 0;
    block.endsFunction = (flags & 2) != 0;
    const Addr call_target = rd.u64();
    if (flags & 4)
        block.callTarget = call_target;
    const std::uint32_t ninsns = rd.u32();
    if (ninsns > rd.remaining() / 38) // encoded instruction size
        return false;
    block.insns.resize(ninsns);
    for (Instruction &in : block.insns) {
        if (!decodeInstruction(rd, in))
            return false;
    }
    const std::uint32_t nsuccs = rd.u32();
    if (nsuccs > rd.remaining() / 9)
        return false;
    block.succs.resize(nsuccs);
    for (Edge &e : block.succs) {
        e.target = rd.u64();
        const std::uint8_t kind = rd.u8();
        if (kind > static_cast<std::uint8_t>(EdgeKind::jumpTable))
            return false;
        e.kind = static_cast<EdgeKind>(kind);
    }
    return !rd.failed();
}

bool
decodeFunction(ByteReader &rd, Function &func)
{
    func.name = rd.str();
    func.entry = rd.u64();
    func.end = rd.u64();
    const std::uint8_t failure = rd.u8();
    if (failure >
        static_cast<std::uint8_t>(AnalysisFailure::gapsWithRealCode))
        return false;
    func.failure = static_cast<AnalysisFailure>(failure);
    const std::uint32_t npads = rd.u32();
    if (npads > rd.remaining() / 8)
        return false;
    for (std::uint32_t i = 0; i < npads; ++i)
        func.landingPads.insert(rd.u64());
    const std::uint32_t ntails = rd.u32();
    if (ntails > rd.remaining() / 8)
        return false;
    for (std::uint32_t i = 0; i < ntails; ++i)
        func.indirectTailCalls.push_back(rd.u64());
    const std::uint32_t njts = rd.u32();
    if (njts > rd.remaining() / 46) // minimum encoded table size
        return false;
    func.jumpTables.resize(njts);
    for (JumpTable &jt : func.jumpTables) {
        if (!decodeJumpTable(rd, jt))
            return false;
    }
    const std::uint32_t nblocks = rd.u32();
    if (nblocks > rd.remaining() / 33) // minimum encoded block size
        return false;
    for (std::uint32_t i = 0; i < nblocks; ++i) {
        Block block;
        if (!decodeBlock(rd, block))
            return false;
        func.blocks.emplace(block.start, std::move(block));
    }
    // Trailing garbage means the payload was not written by this
    // encoder: reject rather than guess.
    return !rd.failed() && rd.remaining() == 0;
}

bool
decodeLiveness(ByteReader &rd, LivenessResult &live)
{
    const std::uint32_t n = rd.u32();
    if (n > rd.remaining() / 12)
        return false;
    for (std::uint32_t i = 0; i < n; ++i) {
        const Addr addr = rd.u64();
        live.liveIn.emplace(addr, RegSet::fromRaw(rd.u32()));
    }
    return !rd.failed() && rd.remaining() == 0;
}

constexpr std::uint8_t entry_kind_function = 1;
constexpr std::uint8_t entry_kind_liveness = 2;

void
appendEntry(std::vector<std::uint8_t> &out, std::uint8_t kind,
            Arch arch, std::uint64_t key,
            const std::vector<std::uint8_t> &payload)
{
    putU8(out, kind);
    putU8(out, static_cast<std::uint8_t>(arch));
    putU64(out, key);
    putU32(out, static_cast<std::uint32_t>(payload.size()));
    putU64(out, fnv1a(payload.data(), payload.size()));
    out.insert(out.end(), payload.begin(), payload.end());
}

} // namespace

bool
AnalysisCache::save(const std::string &path) const
{
    // Snapshot under the lock, serialize outside it. Ordered maps
    // keep the file byte-stable for identical contents.
    std::map<std::uint64_t, Entry<Function>> functions;
    std::map<std::uint64_t, Entry<LivenessResult>> liveness;
    {
        std::lock_guard<std::mutex> lock(mu_);
        functions.insert(functions_.begin(), functions_.end());
        liveness.insert(liveness_.begin(), liveness_.end());
    }

    std::vector<std::uint8_t> out;
    putU32(out, cache_file_magic);
    putU32(out, cache_file_version);
    putU32(out,
           static_cast<std::uint32_t>(functions.size() +
                                      liveness.size()));
    for (const auto &[key, entry] : functions) {
        appendEntry(out, entry_kind_function, entry.arch, key,
                    encodeFunction(*entry.value));
    }
    for (const auto &[key, entry] : liveness) {
        appendEntry(out, entry_kind_liveness, entry.arch, key,
                    encodeLiveness(*entry.value));
    }

    std::ofstream file(path, std::ios::binary | std::ios::trunc);
    if (!file)
        return false;
    file.write(reinterpret_cast<const char *>(out.data()),
               static_cast<std::streamsize>(out.size()));
    return static_cast<bool>(file);
}

CacheLoadReport
AnalysisCache::load(const std::string &path,
                    std::optional<Arch> expect_arch)
{
    CacheLoadReport report;

    std::ifstream file(path, std::ios::binary);
    if (!file)
        return report; // absent file: cold start, not an error
    std::vector<std::uint8_t> raw(
        (std::istreambuf_iterator<char>(file)),
        std::istreambuf_iterator<char>());
    report.fileRead = true;

    ByteReader rd(raw.data(), raw.size());
    const std::uint32_t magic = rd.u32();
    if (rd.failed() || magic != cache_file_magic) {
        report.issues.push_back(
            {"cache-magic", 0,
             "file does not start with the ICPC cache magic"});
        return report;
    }
    const std::uint32_t version = rd.u32();
    if (version != cache_file_version) {
        char msg[96];
        std::snprintf(msg, sizeof(msg),
                      "format version %u (this build reads %u); "
                      "file ignored",
                      version, cache_file_version);
        report.issues.push_back({"cache-version", 4, msg});
        return report;
    }
    const std::uint32_t count = rd.u32();

    for (std::uint32_t i = 0; i < count; ++i) {
        const std::size_t entry_off = rd.pos();
        const std::uint8_t kind = rd.u8();
        const std::uint8_t arch = rd.u8();
        const std::uint64_t key = rd.u64();
        const std::uint32_t payload_len = rd.u32();
        const std::uint64_t payload_hash = rd.u64();
        const std::uint8_t *payload = rd.blob(payload_len);
        if (rd.failed()) {
            char msg[96];
            std::snprintf(msg, sizeof(msg),
                          "entry %u of %u runs past end of file; "
                          "remaining entries dropped",
                          i + 1, count);
            report.issues.push_back(
                {"cache-truncated", entry_off, msg});
            report.droppedEntries += count - i;
            return report;
        }
        if (fnv1a(payload, payload_len) != payload_hash) {
            report.issues.push_back(
                {"cache-checksum", entry_off,
                 "payload checksum mismatch; entry dropped"});
            ++report.droppedEntries;
            continue;
        }
        if (arch > static_cast<std::uint8_t>(Arch::aarch64)) {
            report.issues.push_back(
                {"cache-entry", entry_off,
                 "unknown ISA tag; entry dropped"});
            ++report.droppedEntries;
            continue;
        }
        if (expect_arch &&
            static_cast<Arch>(arch) != *expect_arch) {
            char msg[96];
            std::snprintf(msg, sizeof(msg),
                          "entry built for %s, image is %s; "
                          "entry dropped",
                          archName(static_cast<Arch>(arch)),
                          archName(*expect_arch));
            report.issues.push_back({"cache-arch", entry_off, msg});
            ++report.droppedEntries;
            continue;
        }

        ByteReader payload_rd(payload, payload_len);
        if (kind == entry_kind_function) {
            Function func;
            if (!decodeFunction(payload_rd, func)) {
                report.issues.push_back(
                    {"cache-entry", entry_off,
                     "malformed function payload; entry dropped"});
                ++report.droppedEntries;
                continue;
            }
            func.cacheKey = key;
            auto value =
                std::make_shared<const Function>(std::move(func));
            std::lock_guard<std::mutex> lock(mu_);
            if (!functions_
                     .emplace(key, Entry<Function>{
                                       static_cast<Arch>(arch),
                                       std::move(value)})
                     .second)
                ++report.skippedExisting;
            else
                ++report.loadedFunctions;
        } else if (kind == entry_kind_liveness) {
            LivenessResult live;
            if (!decodeLiveness(payload_rd, live)) {
                report.issues.push_back(
                    {"cache-entry", entry_off,
                     "malformed liveness payload; entry dropped"});
                ++report.droppedEntries;
                continue;
            }
            auto value = std::make_shared<const LivenessResult>(
                std::move(live));
            std::lock_guard<std::mutex> lock(mu_);
            if (!liveness_
                     .emplace(key, Entry<LivenessResult>{
                                       static_cast<Arch>(arch),
                                       std::move(value)})
                     .second)
                ++report.skippedExisting;
            else
                ++report.loadedLiveness;
        } else {
            report.issues.push_back(
                {"cache-entry", entry_off,
                 "unknown entry kind; entry dropped"});
            ++report.droppedEntries;
        }
    }
    return report;
}

} // namespace icp
