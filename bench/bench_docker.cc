/**
 * @file
 * Reproduces the Docker experiment (§8.2): rewrite the Go-binary
 * analog and exercise it under a command mix with GC stack walks
 * through the binary's own runtime.findfunc/runtime.pcvalue.
 * Expected shape: dir == jt (Go emits no jump tables), func-ptr
 * fails (.vtab function tables), unwinding works only with RA
 * translation, noticeably higher overhead than SPEC/libxul because
 * function pointers cannot be rewritten, ~69% size increase,
 * Egalito cannot rewrite Go at all.
 */

#include <cstdio>

#include "baselines/irlower.hh"
#include "codegen/compiler.hh"
#include "codegen/workloads.hh"
#include "harness/experiment.hh"
#include "rewrite/rewriter.hh"
#include "support/stats.hh"
#include "bench_main.hh"
#include "support/table.hh"

using namespace icp;

int
main(int argc, char **argv)
{
    std::printf("Docker experiment: Go binary analog (§8.2)\n\n");
    const BinaryImage img = compileProgram(dockerProfile());

    // The 13-command mix: run the workload under several GC
    // cadences, standing in for docker pull/run/exec/... commands
    // with different allocation behaviour.
    const std::vector<std::uint64_t> command_gc = {
        16, 24, 32, 48, 64, 96, 128, 192, 256, 384, 512, 768, 1024,
    };

    TextTable table({"Mode", "Ovh mean", "Ovh max", "Coverage",
                     "Size", "GC walks", "Result"});

    for (RewriteMode mode : {RewriteMode::dir, RewriteMode::jt,
                             RewriteMode::funcPtr}) {
        RewriteOptions opts;
        opts.mode = mode;
        SampleStats overhead;
        double coverage = 0, size = 0;
        std::uint64_t walks = 0;
        std::string fail;
        for (std::uint64_t gc : command_gc) {
            Machine::Config mc;
            mc.goGcEveryCalls = gc;
            const ToolRun run =
                runBlockLevelExperiment(img, opts, mc);
            if (!run.pass) {
                fail = run.failReason;
                break;
            }
            overhead.add(run.overhead);
            coverage = run.coverage;
            size = run.sizeIncrease;
            walks += run.rewrittenRun.gcWalks;
        }
        if (!fail.empty() || overhead.empty()) {
            table.addRow({rewriteModeName(mode), "-", "-", "-", "-",
                          "-", "FAILED: " + fail});
            continue;
        }
        table.addRow({rewriteModeName(mode),
                      formatPercent(overhead.mean()),
                      formatPercent(overhead.max()),
                      formatPercent(coverage), formatPercent(size),
                      std::to_string(walks), "pass (13 commands)"});
    }

    const RewriteResult egalito = irLowerRewrite(img, {});
    table.addRow({"Egalito", "-", "-", "-", "-", "-",
                  egalito.ok ? "unexpectedly ok"
                             : "FAILED: " + egalito.failReason});

    std::printf("%s\n", table.render().c_str());
    std::printf(
        "Paper: 100%% coverage; dir and jt identical (Go emits no "
        "jump tables);\nfunc-ptr fails on Go's function tables; "
        "6.98%% average / 16.27%% max\noverhead across 13 commands; "
        "+69.28%% size; Egalito cannot rewrite Go.\n");
    if (!icp::bench::writeJsonIfRequested(argc, argv,
                                          table.json()))
        return 1;
    return 0;
}
