/**
 * @file
 * Scaling benchmark of the parallel per-function pipeline: full
 * rewrites of the two largest workloads at 1/2/4/8 threads, each
 * with a cold and a warm analysis cache, reporting wall time and the
 * per-stage timer breakdown. `--json <path>` writes the results
 * (BENCH_parallel.json in the repository is a committed baseline).
 *
 * Speedups are whatever the host delivers: on a single-core
 * container the thread counts verify determinism and overhead
 * rather than demonstrating parallel speedup.
 */

#include <chrono>
#include <cstdio>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "analysis/cache.hh"
#include "bench_main.hh"
#include "codegen/compiler.hh"
#include "codegen/workloads.hh"
#include "rewrite/rewriter.hh"
#include "support/stats.hh"
#include "support/table.hh"

using namespace icp;

namespace
{

constexpr unsigned reps = 3;

double
rewriteWallMs(const BinaryImage &img, unsigned threads, bool cache)
{
    RewriteOptions opts;
    opts.mode = RewriteMode::funcPtr;
    opts.instrumentation.countFunctionEntries = true;
    opts.threads = threads;
    opts.useAnalysisCache = cache;
    const auto t0 = std::chrono::steady_clock::now();
    const RewriteResult rw = rewriteBinary(img, opts);
    const auto t1 = std::chrono::steady_clock::now();
    if (!rw.ok) {
        std::fprintf(stderr, "rewrite failed: %s\n",
                     rw.failReason.c_str());
        std::exit(1);
    }
    return std::chrono::duration<double, std::milli>(t1 - t0)
        .count();
}

struct Run
{
    unsigned threads = 0;
    bool warm = false;
    double wallMs = 0.0;
    std::string stages; ///< StageTimers JSON of the best rep
};

/**
 * Best-of-reps wall time. Cold runs clear the cache before every
 * rep; warm runs prime it once and keep it.
 */
Run
measure(const BinaryImage &img, unsigned threads, bool warm)
{
    Run run;
    run.threads = threads;
    run.warm = warm;
    run.wallMs = 0.0;
    if (warm) {
        AnalysisCache::global().clear();
        rewriteWallMs(img, threads, true);
    }
    for (unsigned r = 0; r < reps; ++r) {
        if (!warm)
            AnalysisCache::global().clear();
        StageTimers::global().reset();
        const double ms = rewriteWallMs(img, threads, true);
        if (r == 0 || ms < run.wallMs) {
            run.wallMs = ms;
            run.stages = StageTimers::global().json();
        }
    }
    return run;
}

std::string
runsJson(const std::vector<Run> &runs)
{
    std::ostringstream out;
    out << "[";
    for (std::size_t i = 0; i < runs.size(); ++i) {
        const Run &r = runs[i];
        out << (i ? ",\n" : "\n")
            << "    {\"threads\": " << r.threads << ", \"cache\": \""
            << (r.warm ? "warm" : "cold") << "\", \"wall_ms\": "
            << r.wallMs << ", \"stages\": " << r.stages << "}";
    }
    out << "\n  ]";
    return out.str();
}

} // namespace

int
main(int argc, char **argv)
{
    std::printf("Parallel pipeline scaling (hardware concurrency: "
                "%u)\n\n",
                std::thread::hardware_concurrency());

    struct Workload
    {
        const char *name;
        BinaryImage img;
    };
    std::vector<Workload> workloads;
    workloads.push_back({"libxul", compileProgram(libxulProfile())});
    workloads.push_back(
        {"spec_gcc_aarch64",
         compileProgram(specCpuSuite(Arch::aarch64, true)[1])});

    icp::bench::JsonSections sections;
    {
        std::ostringstream hw;
        hw << std::thread::hardware_concurrency();
        sections.add("hardware_concurrency", hw.str());
    }

    for (Workload &w : workloads) {
        TextTable table({"Threads", "Cache", "Wall ms", "Speedup",
                         "vs cold"});
        std::vector<Run> runs;
        double base_cold = 0.0;
        for (unsigned threads : {1u, 2u, 4u, 8u}) {
            double cold_ms = 0.0;
            for (bool warm : {false, true}) {
                Run run = measure(w.img, threads, warm);
                if (!warm) {
                    cold_ms = run.wallMs;
                    if (threads == 1)
                        base_cold = run.wallMs;
                }
                char speedup[32], vs_cold[32];
                std::snprintf(speedup, sizeof(speedup), "%.2fx",
                              base_cold / run.wallMs);
                std::snprintf(vs_cold, sizeof(vs_cold), "%.2fx",
                              cold_ms / run.wallMs);
                table.addRow({std::to_string(threads),
                              warm ? "warm" : "cold",
                              std::to_string(run.wallMs),
                              speedup, warm ? vs_cold : "-"});
                runs.push_back(std::move(run));
            }
        }
        std::printf("%s: %zu functions\n%s\n", w.name,
                    w.img.functionSymbols().size(),
                    table.render().c_str());
        sections.add(w.name, runsJson(runs));
    }

    if (!icp::bench::writeJsonIfRequested(argc, argv,
                                          sections.str()))
        return 1;
    return 0;
}
