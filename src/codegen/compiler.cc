#include "codegen/compiler.hh"

#include <algorithm>
#include <array>
#include <map>

#include "isa/assembler.hh"
#include "isa/bytes.hh"
#include "support/logging.hh"

namespace icp
{

namespace
{

/** Round @p v up to @p align (a power of two). */
Addr
alignUp(Addr v, Addr align)
{
    return (v + align - 1) & ~(align - 1);
}

unsigned
log2Exact(unsigned v)
{
    unsigned r = 0;
    while ((1u << r) < v)
        ++r;
    icp_assert((1u << r) == v, "value %u not a power of two", v);
    return r;
}

/** The Go vtab obfuscation constant (startup adds it back). */
constexpr std::uint64_t vtab_key = 0x11000;

/** Recorded locations of one emitted switch's jump table. */
struct SwitchSite
{
    Addr tableAddr = 0;           // 0 for ppc (embedded in code)
    unsigned entrySize = 4;
    bool relative = true;
    Addr anchorAddr = 0;          // aarch64 anchor; else table base
    std::vector<Addr> caseAddrs;  // final case-block addresses
};

struct FuncMeta
{
    Addr addr = 0;
    std::uint64_t size = 0;
    std::uint32_t frameSize = 0;
    bool raOnStack = true;
    std::int32_t raOffset = 0;
    std::vector<TryRange> tryRanges;
};

class CompilerImpl
{
  public:
    explicit CompilerImpl(const ProgramSpec &spec)
        : spec_(spec), arch_(ArchInfo::get(spec.arch))
    {
    }

    BinaryImage compile();

  private:
    // Total function count including synthesized Go runtime funcs.
    unsigned
    funcCount() const
    {
        return static_cast<unsigned>(spec_.funcs.size()) +
               (spec_.goRuntime ? 2 : 0);
    }

    bool isGoRuntimeFunc(unsigned idx) const
    {
        return idx >= spec_.funcs.size();
    }

    std::string funcName(unsigned idx) const;
    bool funcIsLeaf(const FuncSpec &fs) const;

    Addr funcAddr(unsigned idx) const;
    Addr tableAddr(unsigned func, unsigned sw) const;

    void planLayout();

    FuncMeta emitFunction(unsigned idx, Addr at,
                          std::vector<SwitchSite> *sites);
    void emitRegularBody(Assembler &as, const FuncSpec &fs,
                         unsigned idx, bool is_main,
                         std::vector<SwitchSite> *sites,
                         std::vector<std::array<int, 3>> &try_labels);
    void emitGoRuntimeFunc(Assembler &as, bool is_pcvalue);

    void emitLoadAddr(Assembler &as, Reg rd, Addr target);
    void emitMask(Assembler &as, Reg rd, unsigned bits);
    void emitSwitch(Assembler &as, unsigned func_idx,
                    const SwitchSpec &sw, unsigned sw_idx, Reg arg,
                    std::vector<SwitchSite> *sites);
    void emitPrologue(Assembler &as, const FuncSpec &fs, bool leaf);
    void emitEpilogue(Assembler &as, const FuncSpec &fs, bool leaf);

    void buildDataSections(BinaryImage &img);
    void fillJumpTables(BinaryImage &img);

    const ProgramSpec &spec_;
    const ArchInfo &arch_;
    bool resolved_ = false;

    // Layout.
    Addr prefBase_ = 0;
    Addr dynsymAddr_ = 0, dynstrAddr_ = 0, relaAddr_ = 0;
    std::uint64_t dynsymSize_ = 0, dynstrSize_ = 0, relaSize_ = 0;
    Addr textBase_ = 0;
    std::uint64_t textSize_ = 0;
    Addr rodataBase_ = 0;
    std::uint64_t rodataSize_ = 0;
    Addr dataBase_ = 0;
    std::uint64_t dataSize_ = 0;
    Addr tocBase_ = 0;

    std::vector<Addr> funcAddrs_;
    std::vector<std::uint64_t> funcSizes_;

    // .rodata allocations: per (func, switch) table address.
    std::map<std::pair<unsigned, unsigned>, Addr> tables_;

    // .data allocations.
    std::vector<unsigned> fptrFuncs_; // indices of address-taken funcs
    Addr fptrTableAddr_ = 0;
    Addr pcTableAddr_ = 0;
    Addr vtabAddr_ = 0;
    Addr vtabDataAddr_ = 0;
    Addr plusOneCellAddr_ = 0;
    Addr globalsAddr_ = 0;
    Addr plusOneSlotAddr_ = 0;
    int goexitIdx_ = -1;

    std::vector<SwitchSite> allSites_;
    std::vector<FuncMeta> metas_;
    std::vector<std::uint8_t> metaBytes_; ///< phase-B bytes scratch
};

std::string
CompilerImpl::funcName(unsigned idx) const
{
    if (idx < spec_.funcs.size())
        return spec_.funcs[idx].name;
    return idx == spec_.funcs.size() ? "runtime.findfunc"
                                     : "runtime.pcvalue";
}

bool
CompilerImpl::funcIsLeaf(const FuncSpec &fs) const
{
    return fs.callees.empty() && fs.indirectCalls == 0 && !fs.catches;
}

Addr
CompilerImpl::funcAddr(unsigned idx) const
{
    if (!resolved_)
        return textBase_; // any in-range dummy
    icp_assert(idx < funcAddrs_.size(), "bad func index %u", idx);
    return funcAddrs_[idx];
}

Addr
CompilerImpl::tableAddr(unsigned func, unsigned sw) const
{
    if (!resolved_)
        return textBase_ + 0x1000;
    auto it = tables_.find({func, sw});
    icp_assert(it != tables_.end(), "no table for f%u s%u", func, sw);
    return it->second;
}

void
CompilerImpl::emitLoadAddr(Assembler &as, Reg rd, Addr target)
{
    switch (arch_.arch) {
      case Arch::x64:
        if (spec_.pie)
            as.emit(makeLea(rd, target));
        else
            as.emit(makeMovImm(rd, static_cast<std::int64_t>(target)));
        break;
      case Arch::ppc64le: {
        const std::int64_t off = static_cast<std::int64_t>(target) -
                                 static_cast<std::int64_t>(tocBase_);
        const std::int64_t hi = (off + 0x8000) >> 16;
        const std::int64_t lo =
            signExtend(static_cast<std::uint64_t>(off), 16);
        icp_assert(fitsSigned(hi, 16), "TOC offset out of range");
        as.emit(makeAddisToc(rd, static_cast<std::int32_t>(hi)));
        as.emit(makeAddImm(rd, lo));
        break;
      }
      case Arch::aarch64: {
        as.emit(makeAdrPage(rd, target));
        const Addr page = ((target + 0x8000) >> 16) << 16;
        as.emit(makeAddImm(rd, static_cast<std::int64_t>(target) -
                               static_cast<std::int64_t>(page)));
        break;
      }
    }
}

void
CompilerImpl::emitMask(Assembler &as, Reg rd, unsigned bits)
{
    icp_assert(bits < 64, "bad mask width");
    if (bits == 0) {
        as.emit(makeXor(rd, rd));
        return;
    }
    as.emit(makeShlImm(rd, static_cast<std::uint8_t>(64 - bits)));
    as.emit(makeShrImm(rd, static_cast<std::uint8_t>(64 - bits)));
}

void
CompilerImpl::emitSwitch(Assembler &as, unsigned func_idx,
                         const SwitchSpec &sw, unsigned sw_idx,
                         Reg arg, std::vector<SwitchSite> *sites)
{
    const unsigned bits = log2Exact(sw.cases);
    const auto merge = as.newLabel();
    const auto dflt = as.newLabel();
    std::vector<Assembler::Label> case_labels(sw.cases);
    for (auto &l : case_labels)
        l = as.newLabel();

    // Merged case bodies: the last case's entry points at case 0's
    // block, so the table has a duplicated target.
    const bool merge_last =
        sw.dupLastCase && !sw.denseTiny && sw.cases >= 2;
    const unsigned bound_cases =
        merge_last ? sw.cases - 1 : sw.cases;
    if (merge_last)
        case_labels[sw.cases - 1] = case_labels[0];

    // Index in r7, derived from the argument register.
    as.emit(makeMovReg(Reg::r7, arg));
    as.emit(makeAddImm(Reg::r7, static_cast<std::int64_t>(sw_idx)));
    emitMask(as, Reg::r7, bits);
    // The bounds check the jump-table analysis reads the table size
    // from; never taken because the mask already bounds the index.
    as.emit(makeCmpImm(Reg::r7, static_cast<std::int64_t>(sw.cases)));
    as.emitToLabel(makeJmpCond(Cond::ge, 0), dflt);

    SwitchSite site;
    site.entrySize = sw.entrySize;

    if (arch_.arch == Arch::ppc64le) {
        // Table embedded in code right after the indirect jump
        // (Assumption 1 violation: jump table data inside .text).
        const auto ltab = as.newLabel();
        as.emitAddisTocPair(Reg::r2, ltab, tocBase_);
        if (sw.hard) {
            // Spill the base through the stack: defeats the
            // backward slice.
            // Spill below sp (red zone): leaf-safe, and the
            // memory round-trip still defeats the backward slice.
            as.emit(makeStore(Reg::sp, -16, Reg::r2));
            as.emit(makeXor(Reg::r2, Reg::r2));
            as.emit(makeLoad(Reg::r2, Reg::sp, -16));
        }
        as.emit(makeLoadIdx(Reg::r3, Reg::r2, Reg::r7, 4, 0, true));
        as.emit(makeAdd(Reg::r3, Reg::r2));
        as.emit(makeJmpInd(Reg::r3));
        as.alignTo(4);
        as.bind(ltab);
        for (unsigned i = 0; i < sw.cases; ++i)
            as.emitDataLabelDiff(case_labels[i], ltab, 4);
        site.relative = true;
        site.tableAddr = 0; // embedded
    } else if (arch_.arch == Arch::aarch64) {
        // Sub-word unsigned entries scaled by 4 relative to an
        // anchor label (Assumption 2 territory: narrow entries).
        const auto anchor = as.newLabel();
        emitLoadAddr(as, Reg::r2,
                     tableAddr(func_idx, sw_idx));
        if (sw.hard) {
            // Spill below sp (red zone): leaf-safe, and the
            // memory round-trip still defeats the backward slice.
            as.emit(makeStore(Reg::sp, -16, Reg::r2));
            as.emit(makeXor(Reg::r2, Reg::r2));
            as.emit(makeLoad(Reg::r2, Reg::sp, -16));
        }
        as.emit(makeLoadIdx(Reg::r3, Reg::r2, Reg::r7,
                            static_cast<std::uint8_t>(sw.entrySize),
                            0, false));
        as.emitToLabel(makeLea(Reg::r2, 0), anchor);
        as.emit(makeShlImm(Reg::r3, 2));
        as.emit(makeAdd(Reg::r3, Reg::r2));
        as.emit(makeJmpInd(Reg::r3));
        as.bind(anchor);
        site.relative = true;
        site.anchorAddr = as.labelAddr(anchor);
    } else {
        // x64: PIC-relative 4-byte entries for PIE, absolute 8-byte
        // entries for position dependent code.
        const bool relative = spec_.pie;
        emitLoadAddr(as, Reg::r2, tableAddr(func_idx, sw_idx));
        if (sw.hard) {
            // Spill below sp (red zone): leaf-safe, and the
            // memory round-trip still defeats the backward slice.
            as.emit(makeStore(Reg::sp, -16, Reg::r2));
            as.emit(makeXor(Reg::r2, Reg::r2));
            as.emit(makeLoad(Reg::r2, Reg::sp, -16));
        }
        if (relative) {
            as.emit(makeLoadIdx(Reg::r3, Reg::r2, Reg::r7, 4, 0,
                                true));
            as.emit(makeAdd(Reg::r3, Reg::r2));
        } else {
            as.emit(makeLoadIdx(Reg::r3, Reg::r2, Reg::r7, 8, 0,
                                false));
        }
        as.emit(makeJmpInd(Reg::r3));
        site.relative = relative;
        site.entrySize = relative ? 4 : 8;
    }

    // Case blocks. Dense-tiny switches chain by fall-through with
    // two-byte bodies; regular switches jump to the merge point.
    if (sw.denseTiny) {
        for (unsigned i = 0; i < sw.cases; ++i) {
            as.bind(case_labels[i]);
            as.emit(makeXor(Reg::r5, Reg::r4));
        }
        as.bind(dflt);
        as.emit(makeAddImm(Reg::r4, 1));
        as.bind(merge);
    } else {
        for (unsigned i = 0; i < bound_cases; ++i) {
            as.bind(case_labels[i]);
            as.emit(makeAddImm(Reg::r4,
                               static_cast<std::int64_t>(i * 7 + 3)));
            as.emitToLabel(makeJmp(0), merge);
        }
        as.bind(dflt);
        as.emit(makeAddImm(Reg::r4, 1));
        as.bind(merge);
    }

    if (sites) {
        // Record final case addresses; the caller resolves the
        // anchor label after finalize.
        for (unsigned i = 0; i < sw.cases; ++i)
            site.caseAddrs.push_back(as.labelAddr(case_labels[i]));
        sites->push_back(std::move(site));
    }
}

void
CompilerImpl::emitPrologue(Assembler &as, const FuncSpec &fs, bool leaf)
{
    (void)fs;
    if (leaf)
        return;
    as.emit(makeAddImm(Reg::sp, -static_cast<std::int64_t>(frame_bytes)));
    if (arch_.hasLinkRegister) {
        as.emit(makeStore(Reg::sp,
                          static_cast<std::int64_t>(frame_bytes) - 8,
                          Reg::lr));
    }
    as.emit(makeStore(Reg::sp, 0, Reg::r8));
    as.emit(makeStore(Reg::sp, 8, Reg::r9));
    as.emit(makeStore(Reg::sp, 16, Reg::r6));
}

void
CompilerImpl::emitEpilogue(Assembler &as, const FuncSpec &fs, bool leaf)
{
    (void)fs;
    if (leaf)
        return;
    as.emit(makeLoad(Reg::r8, Reg::sp, 0));
    as.emit(makeLoad(Reg::r9, Reg::sp, 8));
    as.emit(makeLoad(Reg::r6, Reg::sp, 16));
    if (arch_.hasLinkRegister) {
        as.emit(makeLoad(Reg::lr, Reg::sp,
                         static_cast<std::int64_t>(frame_bytes) - 8));
    }
    as.emit(makeAddImm(Reg::sp, static_cast<std::int64_t>(frame_bytes)));
}

void
CompilerImpl::emitRegularBody(Assembler &as, const FuncSpec &fs,
                              unsigned idx, bool is_main,
                              std::vector<SwitchSite> *sites,
                              std::vector<std::array<int, 3>> &try_labels)
{
    const bool leaf = funcIsLeaf(fs) && !is_main;
    const unsigned iters = is_main
        ? static_cast<unsigned>(spec_.mainIterations)
        : fs.loopIters;
    const bool has_loop = iters > 0;
    // Leaves must not disturb callee-saved registers (r6/r8/r9): a
    // looping leaf parks r6 in the red zone (it makes no calls and,
    // by workload discipline, does not throw); other leaves avoid
    // the registers entirely by keeping the argument in r1 and
    // accumulating directly into r0.
    const bool red_zone_r6 = leaf && has_loop;
    icp_assert(!(red_zone_r6 && fs.throwsOnOdd),
               "a looping leaf must not throw (red-zone r6)");
    const Reg arg = leaf ? Reg::r1 : Reg::r8;

    if (fs.leadingNop)
        as.emit(makeNop());

    emitPrologue(as, fs, leaf);
    if (red_zone_r6)
        as.emit(makeStore(Reg::sp, -8, Reg::r6));
    if (is_main) {
        as.emit(makeMovImm(Reg::r8, 0));
        as.emit(makeMovImm(Reg::r9, 0));
    } else if (!leaf) {
        as.emit(makeMovReg(Reg::r8, Reg::r1));
        as.emit(makeXor(Reg::r9, Reg::r9));
    } else {
        as.emit(makeXor(Reg::r0, Reg::r0));
    }

    // Go-specific startup in main.
    if (is_main && spec_.goVtab && !fptrFuncs_.empty()) {
        const auto fill = as.newLabel();
        emitLoadAddr(as, Reg::r2, vtabDataAddr_);
        emitLoadAddr(as, Reg::r3, vtabAddr_);
        as.emit(makeMovImm(Reg::r4,
            static_cast<std::int64_t>(fptrFuncs_.size())));
        as.emitMovImm64(Reg::r5, vtab_key);
        as.bind(fill);
        as.emit(makeLoad(Reg::r7, Reg::r2, 0));
        as.emit(makeAdd(Reg::r7, Reg::r5));
        as.emit(makeStore(Reg::r3, 0, Reg::r7));
        as.emit(makeAddImm(Reg::r2, 8));
        as.emit(makeAddImm(Reg::r3, 8));
        as.emit(makeAddImm(Reg::r4, -1));
        as.emit(makeCmpImm(Reg::r4, 0));
        as.emitToLabel(makeJmpCond(Cond::gt, 0), fill);
    }
    if (is_main && spec_.goFuncPtrPlusOne) {
        // Listing 1: load a relocated function pointer, add one,
        // store it for later indirect calls.
        emitLoadAddr(as, Reg::r2, plusOneCellAddr_);
        as.emit(makeLoad(Reg::r3, Reg::r2, 0));
        as.emit(makeAddImm(Reg::r3, 1));
        emitLoadAddr(as, Reg::r2, plusOneSlotAddr_);
        as.emit(makeStore(Reg::r2, 0, Reg::r3));
    }

    const auto loop_head = as.newLabel();
    if (has_loop) {
        as.emit(makeMovImm(Reg::r6, 1));
        as.bind(loop_head);
        if (is_main)
            as.emit(makeMovReg(Reg::r8, Reg::r6));
    }

    // Compute segment.
    as.emit(makeMovReg(Reg::r4, arg));
    if (red_zone_r6)
        as.emit(makeAdd(Reg::r4, Reg::r6));
    as.emit(makeMovReg(Reg::r5, Reg::r4));
    for (unsigned i = 0; i < fs.computeOps; ++i) {
        switch (i % 4) {
          case 0: as.emit(makeAddImm(Reg::r4,
                      static_cast<std::int64_t>(i + idx + 1))); break;
          case 1: as.emit(makeXor(Reg::r5, Reg::r4)); break;
          case 2: as.emit(makeAdd(Reg::r4, Reg::r5)); break;
          case 3: as.emit(makeMul(Reg::r5, Reg::r4)); break;
        }
    }

    // Switches.
    for (unsigned s = 0; s < fs.switches.size(); ++s)
        emitSwitch(as, idx, fs.switches[s], s, arg, sites);

    // Function pointer comparison (x == &f), rewritten consistently
    // only when func-ptr analysis is precise (S5.2).
    if (fs.comparesFuncPtr && !fptrFuncs_.empty()) {
        const auto skip = as.newLabel();
        emitLoadAddr(as, Reg::r2, fptrTableAddr_);
        as.emit(makeLoad(Reg::r3, Reg::r2, 0));
        emitLoadAddr(as, Reg::r2, funcAddr(fptrFuncs_[0]));
        as.emit(makeCmp(Reg::r3, Reg::r2));
        as.emitToLabel(makeJmpCond(Cond::ne, 0), skip);
        as.emit(makeAddImm(Reg::r4, 3));
        as.bind(skip);
    }

    // Constant-base load of a global data cell (a feature flag, a
    // tuning knob): the ISA-generic address materialization —
    // lea/adr/addis+addi — gives every ISA functions with a data
    // read-set outside any jump table.
    if (fs.readsGlobal) {
        emitLoadAddr(as, Reg::r2,
                     globalsAddr_ + (fs.globalSlot & 7) * 8);
        as.emit(makeLoad(Reg::r3, Reg::r2, 0));
        as.emit(makeAdd(Reg::r4, Reg::r3));
    }

    // Direct calls, optionally covered by a try range.
    Assembler::Label try_start = -1, try_end = -1, lp = -1;
    if (fs.catches && !fs.callees.empty()) {
        try_start = as.newLabel();
        try_end = as.newLabel();
        lp = as.newLabel();
        as.bind(try_start);
    }
    for (unsigned c = 0; c < fs.callees.size(); ++c) {
        const unsigned callee = fs.callees[c];
        icp_assert(callee < funcCount(), "callee out of range");
        as.emit(makeMovReg(Reg::r1, Reg::r8));
        as.emit(makeAddImm(Reg::r1, static_cast<std::int64_t>(c)));
        as.emit(makeCall(funcAddr(callee)));
        as.emit(makeXor(Reg::r9, Reg::r0));
    }
    if (fs.catches && !fs.callees.empty()) {
        as.bind(try_end);
        const auto after = as.newLabel();
        as.emitToLabel(makeJmp(0), after);
        as.bind(lp);
        as.emit(makeAddImm(Reg::r4, 13));
        as.bind(after);
        try_labels.push_back({try_start, try_end, lp});
    }

    // Indirect calls through the function-pointer table / Go vtab.
    if (fs.indirectCalls > 0 && !fptrFuncs_.empty()) {
        icp_assert(!leaf, "indirect calls imply non-leaf");
        const unsigned n =
            static_cast<unsigned>(fptrFuncs_.size());
        const unsigned bits = log2Exact(n);
        const Addr table = spec_.goVtab ? vtabAddr_ : fptrTableAddr_;
        for (unsigned k = 0; k < fs.indirectCalls; ++k) {
            as.emit(makeMovReg(Reg::r7, Reg::r8));
            as.emit(makeAddImm(Reg::r7,
                               static_cast<std::int64_t>(k)));
            emitMask(as, Reg::r7, bits);
            emitLoadAddr(as, Reg::r2, table);
            as.emit(makeLoadIdx(Reg::r3, Reg::r2, Reg::r7, 8, 0,
                                false));
            as.emit(makeMovReg(Reg::r1, Reg::r8));
            if (arch_.arch == Arch::x64 && k % 2 == 1) {
                // Spill the pointer and call through stack memory —
                // the pattern Dyninst-10.2's call emulation
                // mishandles (§8.1).
                as.emit(makeStore(Reg::sp, 32, Reg::r3));
                as.emit(makeCallIndMem(Reg::sp, 32));
            } else {
                as.emit(makeCallInd(Reg::r3));
            }
            as.emit(makeXor(Reg::r9, Reg::r0));
        }
    }
    // Go Listing-1 indirect call through the +1 pointer.
    if (is_main && spec_.goFuncPtrPlusOne) {
        emitLoadAddr(as, Reg::r2, plusOneSlotAddr_);
        as.emit(makeLoad(Reg::r3, Reg::r2, 0));
        as.emit(makeMovReg(Reg::r1, Reg::r8));
        as.emit(makeCallInd(Reg::r3));
        as.emit(makeXor(Reg::r9, Reg::r0));
    }

    // Conditional throw on odd argument.
    if (fs.throwsOnOdd) {
        const auto skip = as.newLabel();
        as.emit(makeMovReg(Reg::r7, arg));
        emitMask(as, Reg::r7, 1);
        as.emit(makeCmpImm(Reg::r7, 1));
        as.emitToLabel(makeJmpCond(Cond::ne, 0), skip);
        as.emit(makeThrow());
        as.bind(skip);
    }

    // Accumulate and close the loop.
    if (leaf) {
        as.emit(makeXor(Reg::r0, Reg::r4));
        as.emit(makeXor(Reg::r0, Reg::r5));
    } else {
        as.emit(makeXor(Reg::r9, Reg::r4));
        as.emit(makeXor(Reg::r9, Reg::r5));
    }
    if (has_loop) {
        as.emit(makeAddImm(Reg::r6, 1));
        // Rematerialize the bound in r10 (caller-clobbered) so the
        // comparison supports bounds beyond the 16-bit immediates of
        // the fixed-length ISAs.
        as.emitMovImm64(Reg::r10, iters);
        as.emit(makeCmp(Reg::r6, Reg::r10));
        as.emitToLabel(makeJmpCond(Cond::le, 0), loop_head);
    }

    if (!leaf)
        as.emit(makeMovReg(Reg::r0, Reg::r9));
    if (red_zone_r6)
        as.emit(makeLoad(Reg::r6, Reg::sp, -8));

    if (is_main) {
        emitEpilogue(as, fs, leaf);
        as.emit(makeHalt());
        return;
    }

    if (fs.tailCallTo >= 0) {
        emitEpilogue(as, fs, leaf);
        as.emit(makeJmp(funcAddr(
            static_cast<unsigned>(fs.tailCallTo))));
        return;
    }
    if (fs.indirectTailCall && !fptrFuncs_.empty()) {
        const unsigned bits =
            log2Exact(static_cast<unsigned>(fptrFuncs_.size()));
        as.emit(makeMovReg(Reg::r7, arg));
        emitMask(as, Reg::r7, bits);
        emitLoadAddr(as, Reg::r2, fptrTableAddr_);
        as.emit(makeLoadIdx(Reg::r3, Reg::r2, Reg::r7, 8, 0, false));
        as.emit(makeMovReg(Reg::r1, arg));
        emitEpilogue(as, fs, leaf);
        as.emit(makeJmpInd(Reg::r3));
        return;
    }

    emitEpilogue(as, fs, leaf);
    as.emit(makeRet());
}


void
CompilerImpl::emitGoRuntimeFunc(Assembler &as, bool is_pcvalue)
{
    // Frameless leaf: Go-ABI argument on the stack.
    const std::int64_t arg_off =
        8 * (arch_.hasLinkRegister ? go_arg_slot_lr : go_arg_slot_x64);
    const unsigned n = funcCount();

    const auto loop = as.newLabel();
    const auto next = as.newLabel();
    const auto notfound = as.newLabel();
    const auto found = as.newLabel();

    as.emit(makeLoad(Reg::r1, Reg::sp, arg_off));
    emitLoadAddr(as, Reg::r2, pcTableAddr_);
    as.emit(makeMovImm(Reg::r3, 0));
    as.bind(loop);
    as.emit(makeCmpImm(Reg::r3, static_cast<std::int64_t>(n)));
    as.emitToLabel(makeJmpCond(Cond::ge, 0), notfound);
    as.emit(makeMovReg(Reg::r4, Reg::r3));
    as.emit(makeShlImm(Reg::r4, 4));
    as.emit(makeAdd(Reg::r4, Reg::r2));
    as.emit(makeLoad(Reg::r5, Reg::r4, 0));
    as.emit(makeCmp(Reg::r1, Reg::r5));
    as.emitToLabel(makeJmpCond(Cond::lt, 0), next);
    as.emit(makeLoad(Reg::r5, Reg::r4, 8));
    as.emit(makeCmp(Reg::r1, Reg::r5));
    as.emitToLabel(makeJmpCond(Cond::ge, 0), next);
    as.emitToLabel(makeJmp(0), found);
    as.bind(next);
    as.emit(makeAddImm(Reg::r3, 1));
    as.emitToLabel(makeJmp(0), loop);
    as.bind(found);
    if (is_pcvalue)
        as.emit(makeMovImm(Reg::r0, 0));
    else
        as.emit(makeMovReg(Reg::r0, Reg::r3));
    as.emit(makeRet());
    as.bind(notfound);
    as.emitMovImm64(Reg::r0, ~0ULL);
    as.emit(makeRet());
}

FuncMeta
CompilerImpl::emitFunction(unsigned idx, Addr at,
                           std::vector<SwitchSite> *sites)
{
    Assembler as(arch_, at);
    std::vector<std::array<int, 3>> try_labels;

    if (isGoRuntimeFunc(idx)) {
        emitGoRuntimeFunc(as, idx == spec_.funcs.size() + 1);
    } else {
        emitRegularBody(as, spec_.funcs[idx], idx, idx == 0, sites,
                        try_labels);
    }

    const std::vector<std::uint8_t> bytes = as.finalize();

    FuncMeta meta;
    meta.addr = at;
    meta.size = bytes.size();

    if (isGoRuntimeFunc(idx)) {
        meta.frameSize = 0;
        meta.raOnStack = !arch_.hasLinkRegister;
        meta.raOffset = 0;
    } else {
        const FuncSpec &fs = spec_.funcs[idx];
        const bool leaf = funcIsLeaf(fs) && idx != 0;
        if (leaf) {
            meta.frameSize = 0;
            meta.raOnStack = !arch_.hasLinkRegister;
            meta.raOffset = 0;
        } else {
            meta.frameSize = frame_bytes;
            meta.raOnStack = true;
            meta.raOffset = arch_.hasLinkRegister
                ? static_cast<std::int32_t>(frame_bytes) - 8
                : static_cast<std::int32_t>(frame_bytes);
        }
        for (const auto &tl : try_labels) {
            TryRange range;
            range.startOff = as.labelAddr(tl[0]) - at;
            range.endOff = as.labelAddr(tl[1]) - at;
            range.lpOff = as.labelAddr(tl[2]) - at;
            meta.tryRanges.push_back(range);
        }
    }

    if (resolved_)
        metaBytes_ = bytes;
    return meta;
}

void
CompilerImpl::planLayout()
{
    const unsigned n = funcCount();

    // Address-taken functions feed the funcptr table (padded to a
    // power of two by repetition).
    fptrFuncs_.clear();
    for (unsigned i = 0; i < spec_.funcs.size(); ++i) {
        if (spec_.funcs[i].addressTaken)
            fptrFuncs_.push_back(i);
        if (spec_.funcs[i].name == "go.goexit")
            goexitIdx_ = static_cast<int>(i);
    }
    if (!fptrFuncs_.empty()) {
        const std::size_t orig = fptrFuncs_.size();
        std::size_t pow2 = 1;
        while (pow2 < orig)
            pow2 <<= 1;
        while (fptrFuncs_.size() < pow2)
            fptrFuncs_.push_back(fptrFuncs_[fptrFuncs_.size() % orig]);
    }
    icp_assert(!spec_.goFuncPtrPlusOne || goexitIdx_ >= 0,
               "goFuncPtrPlusOne needs a go.goexit function");
    icp_assert(!spec_.goFuncPtrPlusOne || spec_.arch == Arch::x64,
               "the +1 pattern is modeled on x64 only");

    prefBase_ =
        (spec_.pie ? 0x10000 : 0x400000) + spec_.baseOffset;

    // Dynamic-linking sections first (sizes depend only on counts).
    dynsymAddr_ = prefBase_ + 0x1000;
    dynsymSize_ = 24ULL * n + 32;
    dynstrAddr_ = alignUp(dynsymAddr_ + dynsymSize_, 16);
    dynstrSize_ = 0;
    for (unsigned i = 0; i < n; ++i)
        dynstrSize_ += funcName(i).size() + 1;
    relaAddr_ = alignUp(dynstrAddr_ + dynstrSize_, 16);
    std::uint64_t nrelocs = 0;
    if (spec_.pie) {
        nrelocs = fptrFuncs_.size() + 2ULL * n +
                  (spec_.goVtab ? fptrFuncs_.size() : 0) +
                  (spec_.goFuncPtrPlusOne ? 1 : 0);
    }
    relaSize_ = 16 * nrelocs + 16;

    textBase_ = alignUp(relaAddr_ + relaSize_,
                        spec_.textAlign != 0 ? spec_.textAlign
                                             : 4096);

    // Phase A: size every function at a dummy address.
    resolved_ = false;
    tocBase_ = textBase_; // dummy until rodata is placed
    funcSizes_.assign(n, 0);
    for (unsigned i = 0; i < n; ++i)
        funcSizes_[i] = emitFunction(i, textBase_, nullptr).size;

    // Assign final function addresses.
    funcAddrs_.assign(n, 0);
    Addr cursor = textBase_;
    for (unsigned i = 0; i < n; ++i) {
        const unsigned align = std::max<unsigned>(
            arch_.instrAlign,
            isGoRuntimeFunc(i) ? 16 : spec_.funcs[i].alignment);
        cursor = alignUp(cursor, align);
        funcAddrs_[i] = cursor;
        cursor += funcSizes_[i];
        if (!isGoRuntimeFunc(i))
            cursor += spec_.funcs[i].padding;
    }
    textSize_ = cursor - textBase_;
    if (spec_.textSizeFloor > textSize_)
        textSize_ = spec_.textSizeFloor; // nop-padded tail

    // .rodata: jump tables for the table-in-rodata architectures,
    // then the padding blob.
    rodataBase_ = alignUp(textBase_ + textSize_, 4096);
    Addr rocur = rodataBase_;
    tables_.clear();
    if (arch_.arch != Arch::ppc64le) {
        for (unsigned i = 0; i < spec_.funcs.size(); ++i) {
            const auto &sws = spec_.funcs[i].switches;
            for (unsigned s = 0; s < sws.size(); ++s) {
                unsigned esz = sws[s].entrySize;
                if (arch_.arch == Arch::x64)
                    esz = spec_.pie ? 4 : 8;
                rocur = alignUp(rocur, 8);
                tables_[{i, s}] = rocur;
                rocur += std::uint64_t{sws[s].cases} * esz;
            }
        }
    }
    rocur = alignUp(rocur, 16);
    rocur += spec_.rodataPadding;
    rodataSize_ = rocur - rodataBase_;
    if (rodataSize_ == 0)
        rodataSize_ = 16;
    tocBase_ = rodataBase_ + 0x8000;

    // .data: funcptr table, Go pcdata, vtab(+data), +1 cell/slot.
    dataBase_ = alignUp(rodataBase_ + rodataSize_, 4096);
    Addr dcur = dataBase_;
    fptrTableAddr_ = dcur;
    dcur += 8ULL * fptrFuncs_.size();
    pcTableAddr_ = dcur;
    dcur += 16ULL * n;
    if (spec_.goVtab) {
        vtabAddr_ = dcur;
        dcur += 8ULL * fptrFuncs_.size();
        vtabDataAddr_ = dcur;
        dcur += 8ULL * fptrFuncs_.size();
    }
    if (spec_.goFuncPtrPlusOne) {
        plusOneCellAddr_ = dcur;
        dcur += 8;
        plusOneSlotAddr_ = dcur;
        dcur += 8;
    }
    globalsAddr_ = dcur;
    dcur += 64; // small globals area
    dataSize_ = dcur - dataBase_;
}

void
CompilerImpl::buildDataSections(BinaryImage &img)
{
    Section data;
    data.name = ".data";
    data.kind = SectionKind::data;
    data.addr = dataBase_;
    data.memSize = dataSize_;
    data.writable = true;
    data.bytes.assign(dataSize_, 0);

    auto put64 = [&](Addr at, std::uint64_t v) {
        const Offset off = at - dataBase_;
        for (unsigned i = 0; i < 8; ++i)
            data.bytes[off + i] =
                static_cast<std::uint8_t>(v >> (8 * i));
    };
    auto pointerCell = [&](Addr at, Addr value) {
        if (spec_.pie) {
            img.relocs.push_back(
                {at, static_cast<std::int64_t>(value)});
            put64(at, value); // file content; loader overwrites
        } else {
            put64(at, value);
        }
    };

    for (std::size_t i = 0; i < fptrFuncs_.size(); ++i)
        pointerCell(fptrTableAddr_ + 8 * i, funcAddrs_[fptrFuncs_[i]]);

    for (unsigned i = 0; i < funcCount(); ++i) {
        pointerCell(pcTableAddr_ + 16ULL * i, funcAddrs_[i]);
        pointerCell(pcTableAddr_ + 16ULL * i + 8,
                    funcAddrs_[i] + funcSizes_[i]);
    }

    if (spec_.goVtab) {
        for (std::size_t i = 0; i < fptrFuncs_.size(); ++i) {
            // Obfuscated: target minus key; startup adds key back.
            // The relocation (when present) points outside any
            // function, so pointer analyses do not classify it.
            pointerCell(vtabDataAddr_ + 8 * i,
                        funcAddrs_[fptrFuncs_[i]] - vtab_key);
        }
    }
    if (spec_.goFuncPtrPlusOne) {
        pointerCell(plusOneCellAddr_,
                    funcAddrs_[static_cast<unsigned>(goexitIdx_)]);
    }

    img.sections.push_back(std::move(data));
}

void
CompilerImpl::fillJumpTables(BinaryImage &img)
{
    Section *ro = img.findSection(SectionKind::rodata);
    icp_assert(ro, "no .rodata");
    std::size_t site_idx = 0;
    for (unsigned i = 0; i < spec_.funcs.size(); ++i) {
        const auto &sws = spec_.funcs[i].switches;
        for (unsigned s = 0; s < sws.size(); ++s) {
            icp_assert(site_idx < allSites_.size(),
                       "switch site bookkeeping mismatch");
            const SwitchSite &site = allSites_[site_idx++];
            if (arch_.arch == Arch::ppc64le)
                continue; // embedded in code
            const Addr table = tables_.at({i, s});
            const Offset base_off = table - ro->addr;
            for (std::size_t e = 0; e < site.caseAddrs.size(); ++e) {
                std::uint64_t value;
                if (arch_.arch == Arch::aarch64) {
                    const std::int64_t diff =
                        static_cast<std::int64_t>(site.caseAddrs[e]) -
                        static_cast<std::int64_t>(site.anchorAddr);
                    icp_assert(diff >= 0 && diff % 4 == 0,
                               "a64 case before anchor");
                    value = static_cast<std::uint64_t>(diff / 4);
                    icp_assert(site.entrySize == 8 ||
                               value < (1ULL << (8 * site.entrySize)),
                               "a64 entry does not fit %u bytes "
                               "(value %llu)", site.entrySize,
                               static_cast<unsigned long long>(value));
                } else if (site.relative) {
                    value = static_cast<std::uint64_t>(
                        static_cast<std::int64_t>(site.caseAddrs[e]) -
                        static_cast<std::int64_t>(table));
                } else {
                    value = site.caseAddrs[e];
                }
                const Offset off = base_off + e * site.entrySize;
                for (unsigned b = 0; b < site.entrySize; ++b) {
                    ro->bytes[off + b] =
                        static_cast<std::uint8_t>(value >> (8 * b));
                }
            }
        }
    }
}

BinaryImage
CompilerImpl::compile()
{
    planLayout();

    BinaryImage img;
    img.arch = spec_.arch;
    img.pie = spec_.pie;
    img.prefBase = prefBase_;
    img.tocBase = tocBase_;
    img.features = spec_.features;
    if (spec_.sharedObject)
        img.soname = spec_.name + ".so";

    // Phase B: final emission.
    resolved_ = true;
    allSites_.clear();
    metas_.clear();
    std::vector<std::uint8_t> text(textSize_, 0);
    // Inter-function padding is nop bytes (scratch-space source #1).
    {
        Instruction nop = makeNop();
        std::vector<std::uint8_t> nop_bytes;
        arch_.codec->encode(nop, textBase_, nop_bytes);
        for (std::size_t i = 0; i + nop_bytes.size() <= text.size();
             i += nop_bytes.size()) {
            for (std::size_t b = 0; b < nop_bytes.size(); ++b)
                text[i + b] = nop_bytes[b];
        }
    }
    std::vector<FdeRecord> fdes;
    for (unsigned i = 0; i < funcCount(); ++i) {
        FuncMeta meta = emitFunction(i, funcAddrs_[i], &allSites_);
        icp_assert(meta.size == funcSizes_[i],
                   "phase A/B size mismatch for %s: %llu vs %llu",
                   funcName(i).c_str(),
                   static_cast<unsigned long long>(funcSizes_[i]),
                   static_cast<unsigned long long>(meta.size));
        const Offset off = funcAddrs_[i] - textBase_;
        std::copy(metaBytes_.begin(), metaBytes_.end(),
                  text.begin() + static_cast<std::ptrdiff_t>(off));

        FdeRecord fde;
        fde.start = meta.addr;
        fde.end = meta.addr + meta.size;
        fde.frameSize = meta.frameSize;
        fde.raOnStack = meta.raOnStack;
        fde.raOffset = meta.raOffset;
        fde.savesCalleeSaved = meta.frameSize > 0;
        fde.tryRanges = meta.tryRanges;
        fdes.push_back(std::move(fde));

        Symbol sym;
        sym.name = funcName(i);
        sym.kind = Symbol::Kind::function;
        sym.addr = meta.addr;
        sym.size = meta.size;
        img.symbols.push_back(std::move(sym));
        metas_.push_back(meta);
    }
    img.entry = funcAddrs_[0];

    // Sections.
    {
        Section s;
        s.name = ".dynsym";
        s.kind = SectionKind::dynsym;
        s.addr = dynsymAddr_;
        s.memSize = dynsymSize_;
        s.bytes.assign(dynsymSize_, 0);
        for (unsigned i = 0; i < funcCount(); ++i) {
            // A plausible fixed-width record: addr + size + name idx.
            std::vector<std::uint8_t> rec;
            putU64(rec, funcAddrs_[i]);
            putU64(rec, funcSizes_[i]);
            putU64(rec, i);
            std::copy(rec.begin(), rec.end(),
                      s.bytes.begin() + 24LL * i);
        }
        img.sections.push_back(std::move(s));
    }
    {
        Section s;
        s.name = ".dynstr";
        s.kind = SectionKind::dynstr;
        s.addr = dynstrAddr_;
        s.memSize = dynstrSize_;
        for (unsigned i = 0; i < funcCount(); ++i) {
            const std::string name = funcName(i);
            s.bytes.insert(s.bytes.end(), name.begin(), name.end());
            s.bytes.push_back(0);
        }
        img.sections.push_back(std::move(s));
    }

    {
        Section s;
        s.name = ".text";
        s.kind = SectionKind::text;
        s.addr = textBase_;
        s.memSize = textSize_;
        s.executable = true;
        s.bytes = std::move(text);
        img.sections.push_back(std::move(s));
    }
    {
        Section s;
        s.name = ".rodata";
        s.kind = SectionKind::rodata;
        s.addr = rodataBase_;
        s.memSize = rodataSize_;
        s.bytes.assign(rodataSize_, 0);
        img.sections.push_back(std::move(s));
    }

    buildDataSections(img);
    fillJumpTables(img);

    // .rela.dyn mirrors img.relocs as bytes (movable blob).
    {
        Section s;
        s.name = ".rela.dyn";
        s.kind = SectionKind::relaDyn;
        s.addr = relaAddr_;
        for (const auto &rel : img.relocs) {
            putU64(s.bytes, rel.site);
            putU64(s.bytes, static_cast<std::uint64_t>(rel.addend));
        }
        s.bytes.resize(relaSize_, 0);
        s.memSize = relaSize_;
        img.sections.push_back(std::move(s));
    }

    // .eh_frame, placed after .data.
    {
        Section s;
        s.name = ".eh_frame";
        s.kind = SectionKind::ehFrame;
        s.addr = alignUp(dataBase_ + dataSize_, 4096);
        s.bytes = serializeEhFrame(fdes);
        s.memSize = s.bytes.size();
        img.sections.push_back(std::move(s));
    }

    if (spec_.emitLinkRelocs) {
        for (unsigned i = 0; i < funcCount(); ++i)
            img.linkRelocs.push_back({funcAddrs_[i], funcName(i), 0});
    }

    return img;
}

} // namespace

BinaryImage
compileProgram(const ProgramSpec &spec)
{
    icp_assert(!spec.funcs.empty(), "program needs at least main");
    CompilerImpl impl(spec);
    return impl.compile();
}

} // namespace icp
