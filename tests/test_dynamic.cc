/**
 * @file
 * Dynamic binary instrumentation tests (§10): attach the rewriter
 * to a running process mid-execution, verify graceful migration
 * into instrumented code, preserved behaviour, RA translation for
 * exceptions thrown after the attach, and partial-attach
 * (Diogenes-style) on a live process.
 */

#include <gtest/gtest.h>

#include "codegen/compiler.hh"
#include "codegen/workloads.hh"
#include "rewrite/dynamic.hh"
#include "rewrite/rewriter.hh"
#include "sim/loader.hh"
#include "sim/machine.hh"

using namespace icp;

namespace
{

struct DynamicRun
{
    RunResult result;
    RewriteResult rewrite;
};

DynamicRun
runWithAttachAfter(const BinaryImage &img, std::uint64_t warm_steps,
                   RewriteOptions opts)
{
    DynamicRun out;
    auto proc = loadImage(img);
    Machine machine(*proc, Machine::Config{});
    machine.start();
    machine.runFor(warm_steps);
    EXPECT_FALSE(machine.finished());

    out.rewrite = attachAndPatch(*proc, img, opts);
    EXPECT_TRUE(out.rewrite.ok) << out.rewrite.failReason;
    machine.flushDecodeCache();
    static thread_local RuntimeLib *leaked = nullptr;
    // The runtime library must outlive the machine run.
    leaked = new RuntimeLib(out.rewrite.image);
    machine.attachRuntimeLib(leaked);

    out.result = machine.runFor(~std::uint64_t{0});
    return out;
}

} // namespace

TEST(Dynamic, AttachPreservesBehaviour)
{
    const BinaryImage img =
        compileProgram(microProfile(Arch::x64, false));
    auto gp = loadImage(img);
    Machine golden(*gp, Machine::Config{});
    const RunResult g = golden.run();
    ASSERT_TRUE(g.halted);

    RewriteOptions opts;
    opts.mode = RewriteMode::jt;
    opts.instrumentation.countBlocks = true;
    const DynamicRun dyn = runWithAttachAfter(img, 5000, opts);
    ASSERT_TRUE(dyn.result.halted) << dyn.result.describe();
    EXPECT_EQ(dyn.result.checksum, g.checksum);
    EXPECT_EQ(dyn.result.exceptionsThrown, g.exceptionsThrown);

    // Execution migrated into instrumented code: counters moved.
    std::uint64_t counted = 0;
    for (std::uint64_t c : dyn.result.counters)
        counted += c;
    EXPECT_GT(counted, 0u);
}

TEST(Dynamic, AttachOnAllArches)
{
    for (Arch arch : all_arches) {
        const BinaryImage img =
            compileProgram(microProfile(arch, false));
        auto gp = loadImage(img);
        Machine golden(*gp, Machine::Config{});
        const RunResult g = golden.run();

        RewriteOptions opts;
        opts.mode = RewriteMode::jt;
        const DynamicRun dyn = runWithAttachAfter(img, 3000, opts);
        ASSERT_TRUE(dyn.result.halted)
            << archName(arch) << ": " << dyn.result.describe();
        EXPECT_EQ(dyn.result.checksum, g.checksum) << archName(arch);
    }
}

TEST(Dynamic, ExceptionsAfterAttachUseRaTranslation)
{
    // Attach very early so almost all throws happen post-attach
    // from relocated code, exercising .ra_map lookups.
    const BinaryImage img =
        compileProgram(microProfile(Arch::x64, false));
    RewriteOptions opts;
    opts.mode = RewriteMode::funcPtr;
    const DynamicRun dyn = runWithAttachAfter(img, 200, opts);
    ASSERT_TRUE(dyn.result.halted) << dyn.result.describe();
    EXPECT_GT(dyn.result.exceptionsThrown, 0u);
    EXPECT_GT(dyn.rewrite.stats.raMapEntries, 0u);
}

TEST(Dynamic, PartialAttachOnLiveDriver)
{
    // The Diogenes scenario done dynamically: instrument a subset
    // of a running driver library.
    const BinaryImage img = compileProgram(libcudaProfile());
    auto gp = loadImage(img);
    Machine golden(*gp, Machine::Config{});
    const RunResult g = golden.run();

    RewriteOptions opts;
    opts.mode = RewriteMode::jt;
    opts.instrumentation.countFunctionEntries = true;
    for (unsigned i = 1; i <= 8; ++i)
        opts.onlyFunctions.insert("cu_api" + std::to_string(i));

    const DynamicRun dyn = runWithAttachAfter(img, 50000, opts);
    ASSERT_TRUE(dyn.result.halted) << dyn.result.describe();
    EXPECT_EQ(dyn.result.checksum, g.checksum);
    EXPECT_EQ(dyn.rewrite.stats.instrumentedFunctions, 8u);

    // Entry counters fired for calls made after the attach.
    std::uint64_t counted = 0;
    for (std::uint64_t c : dyn.result.counters)
        counted += c;
    EXPECT_GT(counted, 0u);
}

TEST(Dynamic, GoAttachIsADocumentedLimitation)
{
    // §10 extends dynamic instrumentation to C++ exceptions only.
    // Go is out of reach for a fundamental reason this test pins
    // down: the runtime already derived code pointers (the
    // Listing-1 goexit+1 value computed at startup) into mutable
    // state before the attach, and no definition-site rewrite can
    // retroactively fix them — the stale pointer lands inside the
    // entry trampoline.
    const BinaryImage img = compileProgram(dockerProfile());
    auto proc = loadImage(img);
    Machine::Config cfg;
    cfg.goGcEveryCalls = 64;
    Machine machine(*proc, cfg);
    machine.start();
    machine.runFor(20000); // startup (vtab fill, +1 derivation) done
    ASSERT_FALSE(machine.finished());

    RewriteOptions opts;
    opts.mode = RewriteMode::jt;
    const RewriteResult rw = attachAndPatch(*proc, img, opts);
    ASSERT_TRUE(rw.ok);
    machine.flushDecodeCache();
    RuntimeLib rt(rw.image);
    machine.attachRuntimeLib(&rt);
    const RunResult r = machine.runFor(~std::uint64_t{0});
    EXPECT_FALSE(r.halted); // the stale goexit+1 pointer crashes
}
