/**
 * @file
 * Fixed 4-byte codec shared by the ppc64le-like and aarch64-like
 * ISAs. The two differ in which opcodes exist (TOC/tar vs
 * adrp/adr) and in the enforced direct-branch reach (±32 MB vs
 * ±128 MB), both of which are constructor parameters.
 */

#ifndef ICP_ISA_CODEC_FIXED_HH
#define ICP_ISA_CODEC_FIXED_HH

#include "isa/arch.hh"

namespace icp
{

class CodecFixed : public Codec
{
  public:
    struct Options
    {
        /** Enforced ± reach of Jmp/Call, in bytes. */
        std::int64_t branchRange;
        /** ppc64le: AddisToc/MoveToTar/JmpTar available. */
        bool hasToc;
        /** aarch64: Lea (ADR) and AdrPage (ADRP) available. */
        bool hasAdr;
    };

    explicit CodecFixed(const Options &opts) : opts_(opts) {}

    bool encode(const Instruction &in, Addr addr,
                std::vector<std::uint8_t> &out) const override;
    bool decode(const std::uint8_t *bytes, std::size_t avail, Addr addr,
                Instruction &out) const override;
    unsigned encodedLength(const Instruction &in) const override;

    /**
     * Encode ignoring the enforced branchRange (the 26-bit word
     * displacement field still limits the reach). Only used by
     * fault injection to plant out-of-range branches.
     */
    bool encodeUnchecked(const Instruction &in, Addr addr,
                         std::vector<std::uint8_t> &out) const override;

  private:
    bool encodeImpl(const Instruction &in, Addr addr,
                    std::vector<std::uint8_t> &out,
                    bool enforce_range) const;
    bool opcodeSupported(Opcode op) const;

    Options opts_;
};

} // namespace icp

#endif // ICP_ISA_CODEC_FIXED_HH
