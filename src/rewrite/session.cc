#include "rewrite/session.hh"

#include <algorithm>
#include <utility>
#include <vector>

#include "analysis/builder.hh"
#include "analysis/cache.hh"
#include "support/logging.hh"
#include "support/stats.hh"

namespace icp
{

namespace
{

/**
 * Analysis settings that change the shape of the built CFG. Thread
 * count and cache use are excluded: results are bit-identical for
 * every value, so a cached CFG stays valid across them.
 */
bool
sameCfgShape(const AnalysisOptions &a, const AnalysisOptions &b)
{
    return a.resolveJumpTables == b.resolveJumpTables &&
           a.tailCallHeuristic == b.tailCallHeuristic &&
           a.inject.failProb == b.inject.failProb &&
           a.inject.overProb == b.inject.overProb &&
           a.inject.underProb == b.inject.underProb &&
           a.inject.overExtra == b.inject.overExtra &&
           a.inject.underCut == b.inject.underCut &&
           a.inject.seed == b.inject.seed;
}

/**
 * Rules whose findings attach to a single function, plus the global
 * overlap rule (cheap, and a re-rewrite can move any patch). The
 * selective re-lint runs exactly these; addr-map round-trips are the
 * one omission — their findings are never function-attributable, so
 * any such error already forced the full-rewrite fallback.
 */
const std::set<std::string> &
selectiveLintRules()
{
    static const std::set<std::string> rules = {
        "tramp-target",  "tramp-range",      "tramp-chain",
        "tramp-trap",    "tramp-scratch-live", "toc-preserved",
        "jt-clone-bounds", "jt-clone-target", "patch-overlap",
        "eh-frame-cover", "func-ptr-target",
        "datadep-missing", "datadep-stale", "datadep-overbroad",
    };
    return rules;
}

/**
 * Sorted function spans of @p image for attributing changed bytes.
 */
struct DiffSpan
{
    Addr lo = 0;
    Addr hi = 0;
    std::string name;
};

std::vector<DiffSpan>
functionSpans(const BinaryImage &image)
{
    std::vector<DiffSpan> spans;
    for (const Symbol *sym : image.functionSymbols())
        spans.push_back({sym->addr, sym->addr + sym->size, sym->name});
    return spans; // functionSymbols() is already address-sorted
}

/** The span containing @p a, or nullptr. */
const DiffSpan *
spanContaining(const std::vector<DiffSpan> &spans, Addr a)
{
    auto it = std::upper_bound(
        spans.begin(), spans.end(), a,
        [](Addr v, const DiffSpan &s) { return v < s.lo; });
    if (it == spans.begin())
        return nullptr;
    --it;
    return a < it->hi ? &*it : nullptr;
}

} // namespace

RewriteSession::LoadOutcome
RewriteSession::loadInput(BinaryImage newImage)
{
    LoadOutcome out;

    // Diffable only against a completed rewrite of a same-shaped
    // binary: same arch, same section layout, same function symbols.
    bool comparable = hasResult_ && result_.ok &&
                      newImage.arch == input_->arch &&
                      newImage.pie == input_->pie &&
                      newImage.sections.size() ==
                          input_->sections.size();
    if (comparable) {
        const auto olds = input_->functionSymbols();
        const auto news = newImage.functionSymbols();
        comparable = olds.size() == news.size();
        for (std::size_t i = 0; comparable && i < olds.size(); ++i)
            comparable = olds[i]->addr == news[i]->addr &&
                         olds[i]->size == news[i]->size &&
                         olds[i]->name == news[i]->name;
    }

    std::set<Addr> dirty;
    std::vector<std::pair<Addr, Addr>> dataDiffs; // changed [lo, hi)
    std::vector<std::size_t> dataSections;        // their indices
    std::size_t span_count = 0;
    if (comparable) {
        const std::vector<DiffSpan> spans = functionSpans(*input_);
        span_count = spans.size();
        for (std::size_t i = 0; i < input_->sections.size(); ++i) {
            const Section &os = input_->sections[i];
            const Section &ns = newImage.sections[i];
            if (os.name != ns.name || os.addr != ns.addr ||
                os.bytes.size() != ns.bytes.size()) {
                comparable = false; // layout changed
                break;
            }
            if (os.bytes == ns.bytes)
                continue;
            if (!os.executable) {
                // A data edit dirties exactly the functions whose
                // recorded read-sets overlap the changed bytes
                // (Function::dataDeps). That is sound only when
                // analysis reads data through recorded slices:
                //  - non-PIE images word-scan all of .data/.rodata
                //    for function pointers (unrecorded reads), and
                //  - structural sections (.rela.dyn, .dynsym,
                //    .eh_frame, ...) feed whole-image analyses;
                // both fall back to a full reset, as does a session
                // without a manifest to splice from.
                if (!input_->pie || !result_.manifest.populated ||
                    (os.kind != SectionKind::rodata &&
                     os.kind != SectionKind::data)) {
                    comparable = false;
                    break;
                }
                std::size_t b = 0;
                while (b < os.bytes.size()) {
                    if (os.bytes[b] == ns.bytes[b]) {
                        ++b;
                        continue;
                    }
                    std::size_t e = b;
                    while (e < os.bytes.size() &&
                           os.bytes[e] != ns.bytes[e])
                        ++e;
                    dataDiffs.emplace_back(
                        os.addr + static_cast<Addr>(b),
                        os.addr + static_cast<Addr>(e));
                    b = e;
                }
                dataSections.push_back(i);
                continue;
            }
            for (std::size_t b = 0; b < os.bytes.size(); ++b) {
                if (os.bytes[b] == ns.bytes[b])
                    continue;
                const DiffSpan *span = spanContaining(
                    spans, os.addr + static_cast<Addr>(b));
                if (span == nullptr) {
                    // Changed bytes outside any function (padding,
                    // scratch space): not attributable.
                    comparable = false;
                    break;
                }
                dirty.insert(span->lo);
                out.dirtyNames.insert(span->name);
            }
            if (!comparable)
                break;
        }
    }

    if (comparable && !dataDiffs.empty()) {
        // Edits under donated scratch ranges or function-pointer
        // cells interact with emitted artifacts in ways the splice
        // below cannot reproduce; reset conservatively.
        auto overlapsDiff = [&](Addr lo, Addr hi) {
            for (const auto &[dlo, dhi] : dataDiffs) {
                if (dlo < hi && lo < dhi)
                    return true;
            }
            return false;
        };
        for (const auto &[addr, len] : result_.manifest.scratchRanges)
            if (overlapsDiff(addr, addr + len))
                comparable = false;
        for (const Relocation &rel : input_->relocs)
            if (overlapsDiff(rel.site, rel.site + 8))
                comparable = false;
        for (const FuncPtrPatch &p : result_.manifest.funcPtrs)
            if (p.kind == FuncPtrPatch::Kind::dataCell &&
                overlapsDiff(p.site, p.site + 8))
                comparable = false;

        if (comparable && !cfgBuilt_)
            comparable = false;
        if (comparable) {
            // Overlap-keyed invalidation: dirty exactly the readers
            // of the changed bytes.
            DepIndex index;
            for (const auto &[entry, func] : cfg_.functions)
                index.add(entry, func.dataDeps);
            index.build();
            std::set<Addr> owners;
            for (const auto &[lo, hi] : dataDiffs)
                index.overlapping(lo, hi, owners);
            for (Addr entry : owners) {
                dirty.insert(entry);
                auto it = cfg_.functions.find(entry);
                if (it != cfg_.functions.end())
                    out.dirtyNames.insert(it->second.name);
            }
        }
    }
    if (comparable)
        out.unchangedFunctions =
            static_cast<unsigned>(span_count - dirty.size());

    // Adopt the new image; the old CFG described the old bytes.
    owned_ = std::move(newImage);
    input_ = &owned_;
    cfgBuilt_ = false;

    if (!comparable) {
        // Unrelated input: behave like a fresh session.
        result_ = RewriteResult{};
        hasResult_ = false;
        report_ = LintReport{};
        hasReport_ = false;
        failCounts_.clear();
        out.dirtyNames.clear();
        return out;
    }

    // Rebuild the CFG on the new bytes. Unchanged functions hit the
    // AnalysisCache by content key, so only the dirty bodies (plus
    // any cold-cache remainder) actually re-analyze.
    const CacheLoadReport cache_load = mergeDiskCache();
    ensureCfg();

    out.incremental = true;
    out.dirtyFunctions = dirty;

    if (dirty.empty()) {
        // Code-identical input: the previous result stands. A
        // zero-overlap data edit (a string-table change no analysis
        // read) is spliced into the output image wholesale — the
        // rewrite copies input data sections verbatim, so copying
        // the new bytes and re-applying the recorded pointer-cell
        // patches reproduces a cold rewrite of the edited input
        // byte for byte, with zero functions re-emitted.
        for (std::size_t i : dataSections) {
            const Section &ns = input_->sections[i];
            for (Section &rs : result_.image.sections) {
                if (rs.name == ns.name && rs.addr == ns.addr) {
                    rs.bytes = ns.bytes;
                    break;
                }
            }
        }
        if (!dataSections.empty()) {
            for (const FuncPtrPatch &p : result_.manifest.funcPtrs) {
                if (p.kind != FuncPtrPatch::Kind::dataCell)
                    continue;
                std::vector<std::uint8_t> raw;
                for (unsigned b = 0; b < 8; ++b)
                    raw.push_back(static_cast<std::uint8_t>(
                        p.newValue >> (8 * b)));
                result_.image.writeBytes(p.site, raw);
            }
        }
        return out;
    }

    // Selective re-rewrite: re-emit only the changed functions,
    // splice everything else from the previous pass (PR 3's repair
    // path). result_ stays alive and unmoved during the call.
    RewritePass pass;
    pass.cfg = &cfg_;
    pass.previous = &result_;
    pass.dirtyFunctions = dirty;
    RewriteOptions inner = opts_;
    inner.cachePath.clear(); // persistence handled here
    RewriteResult next = rewriteBinary(*input_, inner, pass);
    next.cacheLoad = cache_load;
    saveDiskCache(next);
    result_ = std::move(next);
    hasResult_ = true;
    report_ = LintReport{};
    hasReport_ = false;
    return out;
}

CacheLoadReport
RewriteSession::mergeDiskCache()
{
    if (opts_.cachePath.empty() || !opts_.useAnalysisCache)
        return CacheLoadReport{};
    StageTimer timer(Stage::cacheLoad);
    return AnalysisCache::global().load(opts_.cachePath,
                                        input_->arch);
}

void
RewriteSession::saveDiskCache(const RewriteResult &result)
{
    if (opts_.cachePath.empty() || !opts_.useAnalysisCache ||
        !result.ok)
        return;
    StageTimer timer(Stage::cacheSave);
    AnalysisCache::global().save(opts_.cachePath,
                                 opts_.cacheMaxBytes);
}

void
RewriteSession::ensureCfg()
{
    AnalysisOptions aopts = opts_.analysis;
    aopts.threads = opts_.threads;
    aopts.useCache = opts_.useAnalysisCache;
    if (cfgBuilt_ && sameCfgShape(aopts, cfgOpts_)) {
        cfgOpts_ = aopts;
        return;
    }
    cfg_ = buildCfg(*input_, aopts);
    cfgBuilt_ = true;
    cfgOpts_ = aopts;
}

const CfgModule &
RewriteSession::analyze()
{
    ensureCfg();
    return cfg_;
}

RewriteResult &
RewriteSession::rewrite(const RewriteOptions &options)
{
    opts_ = options;
    // Merge the on-disk cache before the CFG build — the session
    // analyzes during ensureCfg(), so loading inside rewriteBinary
    // (as the one-shot path does) would come too late to seed it.
    const CacheLoadReport cache_load = mergeDiskCache();
    ensureCfg();

    RewritePass pass;
    pass.cfg = &cfg_;
    RewriteOptions inner = opts_;
    inner.cachePath.clear(); // persistence handled here
    RewriteResult next = rewriteBinary(*input_, inner, pass);
    next.cacheLoad = cache_load;
    saveDiskCache(next);
    result_ = std::move(next);
    hasResult_ = true;

    // A fresh rewrite invalidates the previous report and resets the
    // repair history: the functions start with a clean slate.
    report_ = LintReport{};
    hasReport_ = false;
    failCounts_.clear();
    return result_;
}

LintReport &
RewriteSession::lint(const LintOptions &options)
{
    icp_assert(hasResult_, "RewriteSession::lint() before rewrite()");
    ensureCfg();
    lintOpts_ = options;

    LintOptions effective = options;
    effective.originalCfg = &cfg_;
    report_ = lintRewrite(*input_, result_, effective);
    hasReport_ = true;
    return report_;
}

RewriteSession::RepairOutcome
RewriteSession::repair(const LintReport &report,
                       const RepairPolicy &policy)
{
    icp_assert(hasResult_, "RewriteSession::repair() before rewrite()");
    icp_assert(hasReport_, "RewriteSession::repair() before lint()");

    RepairOutcome out;

    // Attribute every error finding to its owning function.
    std::set<std::string> names;
    bool unattributed = false;
    for (const Diagnostic &d : report.findings) {
        if (d.severity < Severity::error)
            continue;
        if (d.function.empty())
            unattributed = true;
        else
            names.insert(d.function);
    }
    if (names.empty() && !unattributed) {
        out.converged = !report_.failed(lintOpts_.failOn);
        return out;
    }

    out.iterations = 1;
    out.repairedFunctions = names;

    // Second failed targeted attempt -> demote to trap trampolines.
    for (const std::string &name : names) {
        const unsigned fails = ++failCounts_[name];
        if (policy.demoteToTrapOnSecondFailure && fails >= 2) {
            opts_.forceTrapFunctions.insert(name);
            out.demotedFunctions.insert(name);
        }
    }
    if (policy.clearInjectedDefect)
        opts_.injectDefect = InjectDefect::none;

    // Map names back to CFG entries; a name that resolves to no
    // entry (stripped or renamed) forces the full fallback.
    std::set<Addr> dirty;
    std::set<std::string> resolved;
    for (const auto &[entry, func] : cfg_.functions) {
        if (names.count(func.name)) {
            dirty.insert(entry);
            resolved.insert(func.name);
        }
    }
    const bool selective =
        !unattributed && resolved.size() == names.size();
    out.fullRewriteFallback = !selective;

    RewritePass pass;
    pass.cfg = &cfg_;
    if (selective) {
        pass.previous = &result_;
        pass.dirtyFunctions = dirty;
    }
    // result_ stays alive (and unmoved) for the whole call: the pass
    // borrows the previous image's .instr bytes and manifest.
    RewriteResult next = rewriteBinary(*input_, opts_, pass);
    result_ = std::move(next);

    LintOptions relint = lintOpts_;
    relint.originalCfg = &cfg_;
    if (selective) {
        // Incremental re-lint: only the re-emitted functions' sites
        // (every other function's bytes were spliced verbatim), plus
        // the global overlap rule. Findings for untouched functions
        // carry over from the previous report.
        relint.onlyFunctions = dirty;
        relint.onlyRules = selectiveLintRules();
        LintReport partial = lintRewrite(*input_, result_, relint);
        for (const Diagnostic &d : report_.findings) {
            if (names.count(d.function))
                continue; // re-checked above
            if (d.rule == "patch-overlap")
                continue; // re-checked globally above
            partial.findings.push_back(d);
        }
        report_ = std::move(partial);
    } else {
        report_ = lintRewrite(*input_, result_, relint);
    }
    hasReport_ = true;

    out.converged = !report_.failed(lintOpts_.failOn);
    return out;
}

RewriteSession::RepairOutcome
RewriteSession::repairToFixedPoint(unsigned max_iterations,
                                   const RepairPolicy &policy)
{
    icp_assert(hasResult_,
               "RewriteSession::repairToFixedPoint() before rewrite()");
    if (!hasReport_)
        lint(lintOpts_);

    RepairOutcome total;
    while (total.iterations < max_iterations) {
        if (!report_.failed(lintOpts_.failOn)) {
            total.converged = true;
            return total;
        }
        RepairOutcome step = repair(report_, policy);
        total.iterations += step.iterations;
        total.repairedFunctions.insert(step.repairedFunctions.begin(),
                                       step.repairedFunctions.end());
        total.demotedFunctions.insert(step.demotedFunctions.begin(),
                                      step.demotedFunctions.end());
        total.fullRewriteFallback |= step.fullRewriteFallback;
        if (step.iterations == 0)
            break; // nothing attributable left to repair
    }
    total.converged = !report_.failed(lintOpts_.failOn);
    return total;
}

} // namespace icp
