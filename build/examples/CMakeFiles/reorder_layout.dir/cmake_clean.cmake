file(REMOVE_RECURSE
  "CMakeFiles/reorder_layout.dir/reorder_layout.cpp.o"
  "CMakeFiles/reorder_layout.dir/reorder_layout.cpp.o.d"
  "reorder_layout"
  "reorder_layout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reorder_layout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
