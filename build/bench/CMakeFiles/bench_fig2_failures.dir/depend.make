# Empty dependencies file for bench_fig2_failures.
# This may be replaced when dependencies are built.
