/**
 * @file
 * The SBF binary image: the unit that the synthetic compiler emits,
 * the analyses consume, the rewriters transform, and the loader maps
 * into simulated memory.
 */

#ifndef ICP_BINFMT_IMAGE_HH
#define ICP_BINFMT_IMAGE_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "binfmt/ehframe.hh"
#include "binfmt/section.hh"
#include "isa/arch.hh"

namespace icp
{

/**
 * Source-language / toolchain features recorded as image metadata.
 * The baseline rewriters consult these to reproduce the paper's
 * failure matrix (e.g. IR lowering fails on C++ exceptions, Rust
 * metadata, Go binaries, and symbol versioning).
 */
struct LangFeatures
{
    bool cppExceptions = false;
    bool isGo = false;
    bool rustMetadata = false;
    bool symbolVersioning = false;
    bool fortranComponent = false;
};

/**
 * A structured finding from SBF container validation. Rule ids:
 * "sbf-magic" (bad magic), "sbf-truncated" (field or payload runs
 * past the end of the blob), "sbf-section-bounds" (section payload
 * larger than its memory size, or address range wraps), and
 * "sbf-section-overlap" (two sections share addresses).
 */
struct SbfIssue
{
    std::string rule;
    std::size_t offset = 0; ///< byte offset into the raw blob
    std::string message;
};

/**
 * A complete binary: sections, symbols, relocations, unwind records,
 * and metadata. All addresses are at the preferred base; PIE images
 * may be loaded at a different base with runtime relocations applied.
 */
class BinaryImage
{
  public:
    Arch arch = Arch::x64;
    bool pie = false;

    /** Preferred (link-time) base address. */
    Addr prefBase = 0;

    /** Entry point (at preferred base). */
    Addr entry = 0;

    /** ppc64le TOC anchor value (at preferred base). */
    Addr tocBase = 0;

    std::string soname; ///< empty for executables

    std::vector<Section> sections;
    std::vector<Symbol> symbols;
    std::vector<Relocation> relocs;
    std::vector<LinkReloc> linkRelocs;
    LangFeatures features;

    // --- accessors ------------------------------------------------------

    Section *findSection(const std::string &name);
    const Section *findSection(const std::string &name) const;

    Section *findSection(SectionKind kind);
    const Section *findSection(SectionKind kind) const;

    /** The section containing address @p a, if any. */
    const Section *sectionAt(Addr a) const;
    Section *sectionAt(Addr a);

    /** All function symbols sorted by address. */
    std::vector<const Symbol *> functionSymbols() const;

    /** The function symbol whose [addr, addr+size) contains @p a. */
    const Symbol *functionContaining(Addr a) const;

    /** Parsed .eh_frame records (empty when no section). */
    std::vector<FdeRecord> fdeRecords() const;

    /** Replace the .eh_frame section contents. */
    void setFdeRecords(const std::vector<FdeRecord> &fdes);

    /**
     * Total size of loadable sections — what binutils' `size`
     * reports; the metric used for Table 3's size-increase columns.
     */
    std::uint64_t loadedSize() const;

    /** Read bytes at a preferred-base address range from sections. */
    bool readBytes(Addr addr, std::size_t len,
                   std::vector<std::uint8_t> &out) const;

    /** Read a little-endian value of @p size bytes at @p addr. */
    std::optional<std::uint64_t> readValue(Addr addr,
                                           unsigned size) const;

    /** Write bytes into the containing section. */
    bool writeBytes(Addr addr, const std::vector<std::uint8_t> &bytes);

    /** First free address after all sections, rounded up. */
    Addr highWaterMark(unsigned alignment = 4096) const;

    /** Append a section; address must not overlap existing ones. */
    Section &addSection(Section section);

    // --- serialization ---------------------------------------------------

    std::vector<std::uint8_t> serialize() const;

    /** Deserialize or die (icp_fatal) naming the violated rule. */
    static BinaryImage deserialize(const std::vector<std::uint8_t> &raw);

    /**
     * Validating deserialization: malformed containers produce
     * structured SbfIssue diagnostics instead of aborting. Returns
     * nullopt (with at least one issue appended) on any violation.
     */
    static std::optional<BinaryImage>
    tryDeserialize(const std::vector<std::uint8_t> &raw,
                   std::vector<SbfIssue> &issues);

    const ArchInfo &archInfo() const { return ArchInfo::get(arch); }
};

} // namespace icp

#endif // ICP_BINFMT_IMAGE_HH
