/**
 * @file
 * Sorted address-pair maps serialized into sections: the .ra_map
 * (relocated return address -> original return address) and the
 * .trap_map (trap trampoline site -> relocated target). The runtime
 * library parses these blobs from the rewritten binary, exactly as
 * the paper's LD_PRELOAD library extracts its mapping.
 */

#ifndef ICP_BINFMT_ADDR_MAP_HH
#define ICP_BINFMT_ADDR_MAP_HH

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "support/types.hh"

namespace icp
{

/**
 * An immutable sorted map from one address to another with O(log n)
 * lookup, plus a compact byte serialization.
 */
class AddrPairMap
{
  public:
    AddrPairMap() = default;

    /** Build from unsorted pairs; duplicate keys are an error. */
    explicit AddrPairMap(std::vector<std::pair<Addr, Addr>> pairs);

    /** Translate @p key; nullopt when absent. */
    std::optional<Addr> lookup(Addr key) const;

    std::size_t size() const { return pairs_.size(); }
    bool empty() const { return pairs_.empty(); }

    const std::vector<std::pair<Addr, Addr>> &pairs() const
    {
        return pairs_;
    }

    std::vector<std::uint8_t> serialize() const;
    static AddrPairMap parse(const std::vector<std::uint8_t> &bytes);

  private:
    std::vector<std::pair<Addr, Addr>> pairs_; // sorted by first
};

} // namespace icp

#endif // ICP_BINFMT_ADDR_MAP_HH
