file(REMOVE_RECURSE
  "CMakeFiles/icp_rewrite.dir/dynamic.cc.o"
  "CMakeFiles/icp_rewrite.dir/dynamic.cc.o.d"
  "CMakeFiles/icp_rewrite.dir/engine.cc.o"
  "CMakeFiles/icp_rewrite.dir/engine.cc.o.d"
  "CMakeFiles/icp_rewrite.dir/rewriter.cc.o"
  "CMakeFiles/icp_rewrite.dir/rewriter.cc.o.d"
  "CMakeFiles/icp_rewrite.dir/scratch.cc.o"
  "CMakeFiles/icp_rewrite.dir/scratch.cc.o.d"
  "CMakeFiles/icp_rewrite.dir/trampoline.cc.o"
  "CMakeFiles/icp_rewrite.dir/trampoline.cc.o.d"
  "libicp_rewrite.a"
  "libicp_rewrite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/icp_rewrite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
