/**
 * @file
 * The SRBI / Dyninst-10.2 baseline: per-block trampolines (no
 * placement analysis, no multi-hop chaining), call emulation for
 * stack unwinding, direct-control-flow-only rewriting, and no
 * indirect-tail-call heuristic. Its documented engineering gaps are
 * reproduced: call emulation is unimplemented on ppc64le/aarch64
 * (C++-exception binaries fail outright there), and the x64
 * emulation mishandles indirect calls through stack memory (§8.1).
 */

#ifndef ICP_BASELINES_SRBI_HH
#define ICP_BASELINES_SRBI_HH

#include <optional>
#include <vector>

#include "rewrite/options.hh"

namespace icp
{

/** Rewrite options modeling SRBI / mainstream Dyninst-10.2. */
RewriteOptions srbiOptions();

/**
 * Preflight check: nullopt when SRBI can attempt the binary, else
 * the reason it refuses (the paper's "failed benchmarks").
 */
std::optional<std::string> srbiRefuses(const BinaryImage &image);

/**
 * One of SRBI / Dyninst-10.2's documented engineering bugs (§8.1),
 * expressed as the fault-injection defect that reproduces it and the
 * single lint rule the planted defect must trip. The static verifier
 * self-test runs every baseline through these: rewriting with
 * srbiOptions() plus @c defect must yield a report whose only error
 * rule is @c rule.
 */
struct SrbiDocumentedBug
{
    const char *name;    ///< short bug label (for test output)
    InjectDefect defect; ///< fault injection reproducing it
    const char *rule;    ///< lint rule id that must flag it
};

/** The §8.1 bug catalog used by the baseline fault-injection test. */
const std::vector<SrbiDocumentedBug> &srbiDocumentedBugs();

/**
 * Dyninst-10.2's signal-delivery bug (§8.1: "over 100%% runtime
 * overhead for 602.sgcc after fixing signal delivery"): runs that
 * lean this heavily on trap trampolines crashed in the runtime
 * library and count as failures.
 */
inline constexpr std::uint64_t srbi_signal_bug_traps = 50000;

inline bool
srbiSignalBugTriggered(std::uint64_t traps)
{
    return traps > srbi_signal_bug_traps;
}

} // namespace icp

#endif // ICP_BASELINES_SRBI_HH
