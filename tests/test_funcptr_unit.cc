/**
 * @file
 * Function-pointer analysis unit tests (§5.2): definition-site
 * classification across relocation-backed cells, non-PIE data
 * scans, code immediates and pc-relative pairs; the forward-sliced
 * +delta tracking of Listing 1; and the deliberate non-
 * classification of pointer-shaped values that are not function
 * entries (the precision/safety requirement).
 */

#include <gtest/gtest.h>

#include "analysis/builder.hh"
#include "analysis/funcptr.hh"
#include "codegen/compiler.hh"
#include "codegen/workloads.hh"

using namespace icp;

namespace
{

const FuncPtrDef *
defAt(const FuncPtrAnalysisResult &result, Addr site)
{
    for (const auto &def : result.defs) {
        if (def.site == site)
            return &def;
    }
    return nullptr;
}

} // namespace

TEST(FuncPtrUnit, RelocCellsPointAtExactEntries)
{
    const BinaryImage img =
        compileProgram(microProfile(Arch::x64, true));
    const CfgModule cfg = buildCfg(img, AnalysisOptions{});
    const auto result = analyzeFuncPtrs(cfg);

    // Every reloc whose addend is a function entry is classified.
    unsigned expected = 0;
    for (const auto &rel : img.relocs) {
        const Symbol *sym = img.functionContaining(
            static_cast<Addr>(rel.addend));
        if (sym && sym->addr == static_cast<Addr>(rel.addend)) {
            ++expected;
            const FuncPtrDef *def = defAt(result, rel.site);
            ASSERT_NE(def, nullptr) << std::hex << rel.site;
            EXPECT_TRUE(def->hasReloc);
            EXPECT_EQ(def->funcEntry,
                      static_cast<Addr>(rel.addend));
        }
    }
    EXPECT_GT(expected, 0u);
}

TEST(FuncPtrUnit, NonPieScanFindsDataCells)
{
    const BinaryImage img =
        compileProgram(microProfile(Arch::x64, false));
    const CfgModule cfg = buildCfg(img, AnalysisOptions{});
    const auto result = analyzeFuncPtrs(cfg);

    unsigned data_cells = 0;
    for (const auto &def : result.defs) {
        if (def.kind == FuncPtrDef::Kind::dataCell) {
            ++data_cells;
            EXPECT_FALSE(def.hasReloc);
            const Symbol *sym = img.functionContaining(def.funcEntry);
            ASSERT_NE(sym, nullptr);
            EXPECT_EQ(sym->addr, def.funcEntry);
        }
    }
    EXPECT_GT(data_cells, 0u);
}

TEST(FuncPtrUnit, FixedIsaPairsClassifyAsPcRel)
{
    for (Arch arch : {Arch::ppc64le, Arch::aarch64}) {
        const BinaryImage img =
            compileProgram(microProfile(arch, false));
        const CfgModule cfg = buildCfg(img, AnalysisOptions{});
        const auto result = analyzeFuncPtrs(cfg);
        bool pair = false;
        for (const auto &def : result.defs) {
            if (def.kind == FuncPtrDef::Kind::codePcRel) {
                pair = true;
                // The pair's instructions both live in code.
                EXPECT_GE(def.defAddrs.size(), 2u);
            }
        }
        EXPECT_TRUE(pair) << archName(arch);
    }
}

TEST(FuncPtrUnit, DeltaTrackedOnlyWhereArithmeticHappens)
{
    const BinaryImage img = compileProgram(dockerProfile());
    const CfgModule cfg = buildCfg(img, AnalysisOptions{});
    const auto result = analyzeFuncPtrs(cfg);

    unsigned with_delta = 0;
    for (const auto &def : result.defs) {
        if (def.delta != 0) {
            ++with_delta;
            EXPECT_EQ(def.delta, 1); // the goexit+1 idiom
            EXPECT_TRUE(def.hasReloc);
            const Symbol *sym = img.functionContaining(def.funcEntry);
            ASSERT_NE(sym, nullptr);
            EXPECT_EQ(sym->name, "go.goexit");
        }
    }
    EXPECT_EQ(with_delta, 1u);
}

TEST(FuncPtrUnit, ObfuscatedVtabValuesStayUnclassified)
{
    // The Go vtab cells hold entry-minus-key values: relocation-
    // backed but pointing at no function. Classifying them would
    // violate the precision requirement; they must be counted as
    // unclassified instead.
    const BinaryImage img = compileProgram(dockerProfile());
    const CfgModule cfg = buildCfg(img, AnalysisOptions{});
    const auto result = analyzeFuncPtrs(cfg);
    EXPECT_GT(result.unclassifiedRelocs, 0u);

    for (const auto &def : result.defs) {
        const Symbol *sym = img.functionContaining(def.funcEntry);
        ASSERT_NE(sym, nullptr) << "classified a non-function value";
    }
}

TEST(FuncPtrUnit, MidFunctionValuesAreNotDefs)
{
    // A data word equal to entry+8 (inside a function, not its
    // entry) must not be classified by the non-PIE scan — rewriting
    // it would change comparison semantics (§5.2).
    ProgramSpec spec = microProfile(Arch::x64, false);
    const BinaryImage base = compileProgram(spec);
    BinaryImage img = base;
    const Symbol *victim = img.functionSymbols()[2];
    Section *data = img.findSection(SectionKind::data);
    ASSERT_NE(data, nullptr);
    const Addr planted = data->addr + data->memSize - 16;
    std::vector<std::uint8_t> raw;
    const Addr value = victim->addr + 8;
    for (unsigned i = 0; i < 8; ++i)
        raw.push_back(static_cast<std::uint8_t>(value >> (8 * i)));
    ASSERT_TRUE(img.writeBytes(planted, raw));

    const CfgModule cfg = buildCfg(img, AnalysisOptions{});
    const auto result = analyzeFuncPtrs(cfg);
    EXPECT_EQ(defAt(result, planted), nullptr);
}
