#include "random.hh"

#include "logging.hh"

namespace icp
{

namespace
{

std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t x = seed;
    for (auto &s : s_)
        s = splitmix64(x);
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

std::uint64_t
Rng::range(std::uint64_t lo, std::uint64_t hi)
{
    icp_assert(lo <= hi, "Rng::range: lo > hi");
    const std::uint64_t span = hi - lo + 1;
    if (span == 0) // full 64-bit range
        return next();
    return lo + next() % span;
}

double
Rng::uniform()
{
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool
Rng::chance(double p)
{
    return uniform() < p;
}

std::size_t
Rng::weightedPick(const std::vector<double> &weights)
{
    icp_assert(!weights.empty(), "weightedPick: empty weights");
    double total = 0;
    for (double w : weights)
        total += w;
    double draw = uniform() * total;
    for (std::size_t i = 0; i < weights.size(); ++i) {
        draw -= weights[i];
        if (draw < 0)
            return i;
    }
    return weights.size() - 1;
}

Rng
Rng::fork()
{
    return Rng(next());
}

} // namespace icp
