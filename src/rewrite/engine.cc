#include "rewrite/engine.hh"

#include <algorithm>
#include <memory>

#include "isa/assembler.hh"
#include "isa/bytes.hh"
#include "codegen/compiler.hh"
#include "sim/runtime_lib.hh"
#include "support/logging.hh"
#include "support/stats.hh"
#include "support/thread_pool.hh"

namespace icp
{

namespace
{

/** How a relocated instruction's address operand is substituted. */
struct Subst
{
    enum class Role : std::uint8_t
    {
        whole,  ///< Lea/MovImm: replace the full target
        hi,     ///< AddisToc / AdrPage half of a pair
        lo,     ///< AddImm half of a pair
    };
    Role role = Role::whole;
    Addr newTarget = 0;
};

Addr
alignUpAddr(Addr v, Addr align)
{
    return (v + align - 1) & ~(align - 1);
}

/**
 * Whether a branch from relocated address @p at back into original
 * space at @p target needs an indirect veneer. Pure in (arch, at,
 * target) so the parallel pipeline can re-check a recorded decision
 * once the final layout is known.
 */
bool
veneerNeeded(const ArchInfo &arch, Addr at, Addr target)
{
    if (!arch.fixedLength)
        return false;
    const std::int64_t d = static_cast<std::int64_t>(target) -
                           static_cast<std::int64_t>(at);
    return d < -arch.directJmpRange + 64 ||
           d > arch.directJmpRange - 64;
}

class Engine
{
  public:
    Engine(const CfgModule &cfg, const std::set<Addr> &instrumented,
           const EngineConfig &config)
        : cfg_(cfg), image_(*cfg.image),
          arch_(cfg.image->archInfo()), instrumented_(instrumented),
          cfg_opts_(config), cloneCursor_(config.newRodataBase)
    {
    }

    EngineResult run();

    // The members below are logically private; they stay accessible
    // because IncrementalEngine's state (defined later in this file)
    // drives the per-function machinery directly.

    /**
     * One function's relocated code under construction. Each stream
     * has its own assembler, so streams build concurrently; every
     * recorded address is an offset from the stream start until the
     * layout pass assigns the final base.
     */
    struct FuncStream
    {
        const Function *func = nullptr;
        std::unique_ptr<Assembler> as;
        Addr base = 0;

        /** Labels of this function's own blocks (bound at emit). */
        std::map<Addr, Assembler::Label> ownLabels;

        /** Labels of other functions' blocks (bound after layout). */
        std::map<Addr, Assembler::Label> externalLabels;

        /** (original block start, stream offset), emission order. */
        std::vector<std::pair<Addr, Offset>> blockOffsets;

        /** (original insn address, stream offset), emission order. */
        std::vector<std::pair<Addr, Offset>> insnOffsets;

        /** (stream offset, original RA), emission order. */
        std::vector<std::pair<Offset, Addr>> raOffsets;

        /**
         * Address-dependent instruction selections made during
         * emission (veneer-or-direct, ADR-reaches-or-widen). When
         * every decision re-validates at the final base, the stream
         * is position-correct after a plain rebase; otherwise the
         * function re-emits at its exact base.
         */
        struct Decision
        {
            bool isVeneer = false; ///< else: Lea encode check
            Offset off = 0;
            Addr target = 0;
            Instruction in;
            bool taken = false;
        };
        std::vector<Decision> decisions;

        std::uint64_t size = 0;
        std::vector<std::uint8_t> bytes;
    };

    void planClones();
    void planFunctionClones(const Function &func);
    bool tryReuseRun(const std::vector<const Function *> &funcs);
    std::vector<const Block *>
    blockEmitOrder(const Function &func) const;
    void assignCounters(const std::vector<const Function *> &funcs);
    void assignCountersFor(const Function &func);
    FuncStream emitFunctionStream(const Function &func, Addr base);
    bool decisionsHold(const FuncStream &fs, Addr base) const;
    void emitFunction(FuncStream &fs, const Function &func);
    void emitBlock(FuncStream &fs, const Function &func,
                   const Block &block, Addr fallthrough_next);
    void emitTranslated(FuncStream &fs, const Function &func,
                        const Instruction &in);
    void appendAlignment(std::vector<std::uint8_t> &out, Addr &addr,
                         Addr target) const;
    void fillClones();

    Assembler::Label
    labelFor(FuncStream &fs, Addr block_start)
    {
        auto own = fs.ownLabels.find(block_start);
        if (own != fs.ownLabels.end())
            return own->second;
        icp_assert(isRelocatedBlock(block_start),
                   "no label for block 0x%llx",
                   static_cast<unsigned long long>(block_start));
        auto [it, inserted] =
            fs.externalLabels.try_emplace(block_start, -1);
        if (inserted)
            it->second = fs.as->newLabel();
        return it->second;
    }

    bool
    isRelocatedBlock(Addr a) const
    {
        return std::binary_search(relocatedBlocks_.begin(),
                                  relocatedBlocks_.end(), a);
    }

    const CfgModule &cfg_;
    const BinaryImage &image_;
    const ArchInfo &arch_;
    const std::set<Addr> &instrumented_;
    EngineConfig cfg_opts_;

    EngineResult result_;
    /** Sorted block starts of every relocated function. A flat
     *  vector, not a set: at browser scale it is millions of
     *  entries, queried far more than it is built. */
    std::vector<Addr> relocatedBlocks_;
    Addr cloneCursor_ = 0;              ///< next .newrodata slot
    std::uint32_t counterNext_ = 0;     ///< next instrumentation id
    std::map<Addr, Subst> substs_;      ///< per base-def instruction
    std::set<Addr> widenLoads_;         ///< widened jt entry loads
};

void
Engine::planFunctionClones(const Function &func)
{
    if (cfg_opts_.mode == RewriteMode::dir)
        return;
    for (const auto &jt : func.jumpTables) {
        TableClone clone;
        clone.table = jt;
        clone.funcEntry = func.entry;
        // Anchor-relative sub-word entries must widen to 4 bytes
        // because relocated distances can exceed (and precede)
        // the original ones (§5.1).
        clone.widened = jt.entrySize < 4;
        clone.entrySize = clone.widened ? 4 : jt.entrySize;
        cloneCursor_ = (cloneCursor_ + 7) & ~Addr{7};
        clone.cloneAddr = cloneCursor_;
        cloneCursor_ +=
            std::uint64_t{jt.entryCount} * clone.entrySize;

        // Substitutions for the base-forming instructions.
        const auto &defs = jt.baseDefAddrs;
        if (defs.size() == 1) {
            substs_[defs[0]] = {Subst::Role::whole,
                                clone.cloneAddr};
        } else if (defs.size() >= 2) {
            substs_[defs[0]] = {Subst::Role::hi, clone.cloneAddr};
            substs_[defs[1]] = {Subst::Role::lo, clone.cloneAddr};
        }
        if (clone.widened)
            widenLoads_.insert(jt.loadAddr);

        result_.clones.push_back(std::move(clone));
    }
}

void
Engine::planClones()
{
    if (cfg_opts_.mode == RewriteMode::dir)
        return;
    for (const auto &[entry, func] : cfg_.functions) {
        if (!instrumented_.count(entry))
            continue;
        planFunctionClones(func);
    }
}

void
Engine::emitTranslated(FuncStream &fs, const Function &func,
                       const Instruction &in)
{
    Assembler &as = *fs.as;
    const Addr orig_next = in.addr + in.length;

    // Jump-table base substitution (jt/func-ptr modes).
    auto subst = substs_.find(in.addr);
    if (subst != substs_.end() &&
        cfg_opts_.mode != RewriteMode::dir) {
        Instruction patched = in;
        const Addr target = subst->second.newTarget;
        switch (subst->second.role) {
          case Subst::Role::whole:
            if (in.op == Opcode::MovImm) {
                patched.imm = static_cast<std::int64_t>(target);
            } else {
                patched.target = target;
            }
            break;
          case Subst::Role::hi:
            if (in.op == Opcode::AddisToc) {
                const std::int64_t off =
                    static_cast<std::int64_t>(target) -
                    static_cast<std::int64_t>(image_.tocBase);
                patched.imm = (off + 0x8000) >> 16;
            } else { // AdrPage
                patched.op = Opcode::AdrPage;
                patched.target = target;
            }
            break;
          case Subst::Role::lo: {
            std::int64_t lo;
            if (arch_.hasToc) {
                const std::int64_t off =
                    static_cast<std::int64_t>(target) -
                    static_cast<std::int64_t>(image_.tocBase);
                lo = signExtend(static_cast<std::uint64_t>(off), 16);
            } else {
                const Addr page = ((target + 0x8000) >> 16) << 16;
                lo = static_cast<std::int64_t>(target) -
                     static_cast<std::int64_t>(page);
            }
            patched.imm = lo;
            break;
          }
        }
        as.emit(patched);
        return;
    }

    // Widened jump-table entry loads (a64 1/2-byte -> 4-byte read).
    if (widenLoads_.count(in.addr) &&
        cfg_opts_.mode != RewriteMode::dir) {
        Instruction patched = in;
        patched.memSize = 4;
        patched.signedLoad = true;
        as.emit(patched);
        return;
    }

    // Materialize an original-space code address into a register in
    // a position-correct way (pc-relative / TOC-relative), as call
    // emulation must on position independent code.
    auto emitMaterializeAddr = [&](Reg rd, Addr target) {
        if (arch_.arch == Arch::x64) {
            as.emit(makeLea(rd, target));
        } else if (arch_.hasToc) {
            const std::int64_t off =
                static_cast<std::int64_t>(target) -
                static_cast<std::int64_t>(image_.tocBase);
            as.emit(makeAddisToc(rd, static_cast<std::int32_t>(
                                         (off + 0x8000) >> 16)));
            as.emit(makeAddImm(
                rd, signExtend(static_cast<std::uint64_t>(off), 16)));
        } else {
            as.emit(makeAdrPage(rd, target));
            const Addr page = ((target + 0x8000) >> 16) << 16;
            as.emit(makeAddImm(rd,
                               static_cast<std::int64_t>(target) -
                                   static_cast<std::int64_t>(page)));
        }
    };
    auto emitEmulatedRa = [&](Addr orig_ra) {
        if (arch_.hasLinkRegister) {
            emitMaterializeAddr(Reg::lr, orig_ra);
        } else {
            emitMaterializeAddr(Reg::r13, orig_ra);
            as.emit(makePush(Reg::r13));
        }
    };

    // Branches from .instr back into original space can exceed the
    // fixed-ISA direct reach (e.g. ppc64le ±32 MB with large data
    // sections); emit a veneer through r13, which the synthetic ABI
    // reserves for the rewriter. The decision depends on the
    // instruction's final address, so it is recorded for the layout
    // pass to re-validate.
    auto needsVeneer = [&](Addr target) {
        FuncStream::Decision d;
        d.isVeneer = true;
        d.off = static_cast<Offset>(as.here() - as.startAddr());
        d.target = target;
        d.taken = veneerNeeded(arch_, as.here(), target);
        fs.decisions.push_back(d);
        return d.taken;
    };
    auto emitVeneerTarget = [&](Addr target) {
        if (arch_.hasToc) {
            const std::int64_t off =
                static_cast<std::int64_t>(target) -
                static_cast<std::int64_t>(image_.tocBase);
            as.emit(makeAddisToc(
                Reg::r13,
                static_cast<std::int32_t>((off + 0x8000) >> 16)));
            as.emit(makeAddImm(
                Reg::r13,
                signExtend(static_cast<std::uint64_t>(off), 16)));
        } else {
            as.emit(makeAdrPage(Reg::r13, target));
            const Addr page = ((target + 0x8000) >> 16) << 16;
            as.emit(makeAddImm(Reg::r13,
                               static_cast<std::int64_t>(target) -
                                   static_cast<std::int64_t>(page)));
        }
    };

    switch (in.op) {
      case Opcode::Jmp: {
        if (isRelocatedBlock(in.target)) {
            as.emitToLabel(makeJmp(0), labelFor(fs, in.target));
        } else if (needsVeneer(in.target)) {
            emitVeneerTarget(in.target);
            as.emit(makeJmpInd(Reg::r13));
        } else {
            as.emit(makeJmp(in.target)); // stays in original space
        }
        return;
      }
      case Opcode::JmpCond: {
        if (isRelocatedBlock(in.target)) {
            Instruction jcc = makeJmpCond(in.cond, 0);
            as.emitToLabel(jcc, labelFor(fs, in.target));
        } else {
            as.emit(makeJmpCond(in.cond, in.target));
        }
        return;
      }
      case Opcode::Call: {
        if (cfg_opts_.callEmulation) {
            // Call emulation: materialize the ORIGINAL return
            // address, then branch. Returns land in original code
            // (the fall-through CFL block's trampoline bounces).
            emitEmulatedRa(orig_next);
            if (isRelocatedBlock(in.target)) {
                as.emitToLabel(makeJmp(0), labelFor(fs, in.target));
            } else if (needsVeneer(in.target)) {
                emitVeneerTarget(in.target);
                as.emit(makeJmpInd(Reg::r13));
            } else {
                as.emit(makeJmp(in.target));
            }
        } else {
            if (isRelocatedBlock(in.target)) {
                as.emitToLabel(makeCall(0), labelFor(fs, in.target));
            } else if (needsVeneer(in.target)) {
                emitVeneerTarget(in.target);
                as.emit(makeCallInd(Reg::r13));
            } else {
                as.emit(makeCall(in.target));
            }
            fs.raOffsets.emplace_back(
                static_cast<Offset>(as.here() - as.startAddr()),
                orig_next);
        }
        return;
      }
      case Opcode::CallInd: {
        if (cfg_opts_.callEmulation) {
            emitEmulatedRa(orig_next);
            as.emit(makeJmpInd(in.rs1));
        } else {
            as.emit(in);
            fs.raOffsets.emplace_back(
                static_cast<Offset>(as.here() - as.startAddr()),
                orig_next);
        }
        return;
      }
      case Opcode::CallIndMem: {
        if (cfg_opts_.callEmulation) {
            // Dyninst-10.2's x64 bug reproduced (§8.1): the pushed
            // return address shifts sp, so sp-relative operands read
            // the wrong slot.
            emitEmulatedRa(orig_next);
            as.emit(makeLoad(Reg::r12, in.rs1, in.imm));
            as.emit(makeJmpInd(Reg::r12));
        } else {
            as.emit(in);
            fs.raOffsets.emplace_back(
                static_cast<Offset>(as.here() - as.startAddr()),
                orig_next);
        }
        return;
      }
      case Opcode::Throw: {
        if (cfg_opts_.callEmulation) {
            // Emulate the call into the throw runtime: materialize
            // the original throw address for the unwinder.
            if (arch_.hasLinkRegister) {
                emitMaterializeAddr(Reg::r13, in.addr);
            } else {
                emitMaterializeAddr(Reg::r13, in.addr);
                as.emit(makePush(Reg::r13));
            }
            as.emit(makeThrowRa());
            return;
        }
        // The unwinder's innermost frame pc is the throw site
        // itself; map it back like a return address so the FDE
        // lookup sees original coordinates (§6).
        fs.raOffsets.emplace_back(
            static_cast<Offset>(as.here() - as.startAddr()),
            in.addr);
        as.emit(in);
        return;
      }
      case Opcode::Lea: {
        // An intra-function Lea of a block start is a jump-table
        // anchor: it must track the relocated code in jt/func-ptr
        // modes so anchor-relative clones stay consistent.
        if (cfg_opts_.mode != RewriteMode::dir &&
            in.target >= func.entry && in.target < func.end &&
            isRelocatedBlock(in.target)) {
            as.emitToLabel(makeLea(in.rd, 0),
                           labelFor(fs, in.target));
            return;
        }
        // The short-range ADR form cannot reach original space from
        // .instr; widen to the adrp/add pair (same absolute value).
        // Reachability depends on the final address: recorded.
        {
            std::vector<std::uint8_t> scratch;
            FuncStream::Decision d;
            d.off = static_cast<Offset>(as.here() - as.startAddr());
            d.in = in;
            d.taken = arch_.codec->encode(in, as.here(), scratch);
            fs.decisions.push_back(d);
            if (!d.taken) {
                as.emit(makeAdrPage(in.rd, in.target));
                const Addr page = ((in.target + 0x8000) >> 16) << 16;
                as.emit(makeAddImm(
                    in.rd, static_cast<std::int64_t>(in.target) -
                               static_cast<std::int64_t>(page)));
                return;
            }
        }
        as.emit(in);
        return;
      }
      default:
        as.emit(in);
        return;
    }
}

void
Engine::emitBlock(FuncStream &fs, const Function &func,
                  const Block &block, Addr fallthrough_next)
{
    Assembler &as = *fs.as;
    as.bind(fs.ownLabels.at(block.start));
    fs.blockOffsets.emplace_back(
        block.start, static_cast<Offset>(as.here() - as.startAddr()));

    // Instrumentation snippets (counter ids pre-assigned in
    // emission order by assignCounters so streams can emit
    // concurrently).
    const bool is_entry = block.start == func.entry;
    if (is_entry && cfg_opts_.goRaTranslation &&
        (func.name == "runtime.findfunc" ||
         func.name == "runtime.pcvalue")) {
        const unsigned slot = arch_.hasLinkRegister ? go_arg_slot_lr
                                                    : go_arg_slot_x64;
        as.emit(makeCallRt(
            rtServiceImm(RtService::raXlatStackSlot, slot)));
    }
    if (is_entry && cfg_opts_.instrumentation.countFunctionEntries) {
        auto id = result_.entryCounters.find(func.entry);
        icp_assert(id != result_.entryCounters.end(),
                   "entry counter not pre-assigned");
        as.emit(makeCallRt(
            rtServiceImm(RtService::count, id->second)));
    }
    if (cfg_opts_.instrumentation.instrumentsBlock(block.start)) {
        auto id = result_.blockCounters.find(block.start);
        icp_assert(id != result_.blockCounters.end(),
                   "block counter not pre-assigned");
        as.emit(makeCallRt(
            rtServiceImm(RtService::count, id->second)));
    }

    for (const auto &in : block.insns) {
        fs.insnOffsets.emplace_back(
            in.addr, static_cast<Offset>(as.here() - as.startAddr()));
        emitTranslated(fs, func, in);
    }

    // Preserve fall-through semantics when the next emitted block is
    // not the layout successor (block reordering, function ends).
    const Instruction &last = block.last();
    const bool falls = !isControlFlow(last.op) ||
                       last.op == Opcode::JmpCond ||
                       isCall(last.op);
    if (falls) {
        const Addr ft = block.end;
        if (ft != fallthrough_next) {
            if (isRelocatedBlock(ft))
                as.emitToLabel(makeJmp(0), labelFor(fs, ft));
            else
                as.emit(makeJmp(ft));
        }
    }
}

std::vector<const Block *>
Engine::blockEmitOrder(const Function &func) const
{
    std::vector<const Block *> order;
    order.reserve(func.blocks.size());
    for (const auto &[start, block] : func.blocks)
        order.push_back(&block);
    if (cfg_opts_.blockOrder == OrderPolicy::reversed) {
        // Keep the entry block first (callers land there), reverse
        // the rest.
        std::reverse(order.begin(), order.end());
        auto it = std::find_if(order.begin(), order.end(),
                               [&](const Block *b) {
                                   return b->start == func.entry;
                               });
        if (it != order.end()) {
            const Block *entry = *it;
            order.erase(it);
            order.insert(order.begin(), entry);
        }
    }
    return order;
}

void
Engine::emitFunction(FuncStream &fs, const Function &func)
{
    const std::vector<const Block *> order = blockEmitOrder(func);
    for (std::size_t i = 0; i < order.size(); ++i) {
        const Addr next =
            i + 1 < order.size() ? order[i + 1]->start : invalid_addr;
        emitBlock(fs, func, *order[i], next);
    }
}

Engine::FuncStream
Engine::emitFunctionStream(const Function &func, Addr base)
{
    FuncStream fs;
    fs.func = &func;
    fs.base = base;
    fs.as = std::make_unique<Assembler>(arch_, base);
    for (const auto &[start, block] : func.blocks)
        fs.ownLabels.emplace(start, fs.as->newLabel());
    emitFunction(fs, func);
    fs.size = fs.as->here() - fs.as->startAddr();
    return fs;
}

bool
Engine::decisionsHold(const FuncStream &fs, Addr base) const
{
    for (const auto &d : fs.decisions) {
        if (d.isVeneer) {
            if (veneerNeeded(arch_, base + d.off, d.target) !=
                d.taken) {
                return false;
            }
        } else {
            std::vector<std::uint8_t> scratch;
            if (arch_.codec->encode(d.in, base + d.off, scratch) !=
                d.taken) {
                return false;
            }
        }
    }
    return true;
}

void
Engine::appendAlignment(std::vector<std::uint8_t> &out, Addr &addr,
                        Addr target) const
{
    // The same bytes Assembler::alignTo produces: encoded nops.
    while (addr < target) {
        const bool ok = arch_.codec->encode(makeNop(), addr, out);
        icp_assert(ok, "nop encode failed");
        addr = cfg_opts_.instrBase + out.size();
    }
    icp_assert(addr == target, "alignment overshot");
}

/**
 * Fill one clone's entries into the .newrodata payload.
 * @p lookupBlock maps an original block start to its relocated
 * address (nullopt when not relocated) — shared between the
 * monolithic engine (map lookup) and the incremental driver (flat
 * sorted vector).
 */
template <typename LookupBlock>
void
fillCloneEntries(const TableClone &clone, Addr new_rodata_base,
                 const LookupBlock &lookupBlock,
                 std::vector<std::uint8_t> &out)
{
    const JumpTable &jt = clone.table;
    for (unsigned i = 0; i < jt.entryCount; ++i) {
        std::uint64_t value = 0;
        const Addr orig_target =
            i < jt.targets.size() ? jt.targets[i] : 0;
        if (std::optional<Addr> relocated = lookupBlock(orig_target)) {
            const Addr tnew = *relocated;
            if (!jt.base) {
                value = tnew;
            } else {
                Addr base_new;
                if (*jt.base == jt.tableAddr) {
                    base_new = clone.cloneAddr;
                } else {
                    // Anchor-relative: the anchor moved with the
                    // code.
                    std::optional<Addr> anchor =
                        lookupBlock(*jt.base);
                    icp_assert(anchor.has_value(),
                               "anchor 0x%llx not relocated",
                               static_cast<unsigned long long>(
                                   *jt.base));
                    base_new = *anchor;
                }
                const std::int64_t diff =
                    static_cast<std::int64_t>(tnew) -
                    static_cast<std::int64_t>(base_new);
                icp_assert((diff &
                            ((1LL << jt.shift) - 1)) == 0,
                           "clone entry not aligned");
                const std::int64_t entry = diff >> jt.shift;
                icp_assert(
                    clone.entrySize == 8 ||
                        fitsSigned(entry, clone.entrySize * 8),
                    "clone entry does not fit");
                value = static_cast<std::uint64_t>(entry);
            }
        }
        // Over-approximated garbage entries keep zero; they are
        // never dereferenced at runtime (§5.1, Failure 3).
        const Offset off =
            clone.cloneAddr - new_rodata_base +
            std::uint64_t{i} * clone.entrySize;
        if (out.size() < off + clone.entrySize)
            out.resize(off + clone.entrySize, 0);
        for (unsigned b = 0; b < clone.entrySize; ++b) {
            out[off + b] =
                static_cast<std::uint8_t>(value >> (8 * b));
        }
    }
}

void
Engine::fillClones()
{
    const auto lookup = [&](Addr a) -> std::optional<Addr> {
        auto it = result_.blockMap.find(a);
        if (it == result_.blockMap.end())
            return std::nullopt;
        return it->second;
    };
    for (const auto &clone : result_.clones) {
        fillCloneEntries(clone, cfg_opts_.newRodataBase, lookup,
                         result_.newRodataBytes);
    }
}

void
Engine::assignCountersFor(const Function &func)
{
    for (const Block *block : blockEmitOrder(func)) {
        if (block->start == func.entry &&
            cfg_opts_.instrumentation.countFunctionEntries) {
            result_.entryCounters[func.entry] = counterNext_++;
        }
        if (cfg_opts_.instrumentation.instrumentsBlock(
                block->start)) {
            result_.blockCounters[block->start] = counterNext_++;
        }
    }
}

void
Engine::assignCounters(const std::vector<const Function *> &funcs)
{
    for (const Function *func : funcs)
        assignCountersFor(*func);
}

/**
 * Selective re-rewrite: re-emit only the dirty functions at the
 * bases the previous pass recorded, splicing their bytes into a copy
 * of the previous .instr payload; every other function's bytes,
 * block/insn map entries, and RA pairs carry over verbatim. Returns
 * false (leaving result_ untouched except clones/counters, which the
 * caller's full run path recomputes identically) whenever the
 * previous layout cannot be reproduced exactly — the caller then
 * falls back to a full emission.
 */
bool
Engine::tryReuseRun(const std::vector<const Function *> &funcs)
{
    const EngineReuse &ru = cfg_opts_.reuse;
    const RewriteManifest &prev = *ru.manifest;
    const std::vector<FuncSpan> &spans = prev.funcSpans;
    if (spans.size() != funcs.size())
        return false;
    for (std::size_t i = 0; i < funcs.size(); ++i) {
        if (spans[i].entry != funcs[i]->entry)
            return false;
    }

    // Nothing dirty: the previous pass's artifacts stand wholesale.
    // Skipping the per-entry copy below keeps the no-op warm path
    // O(result size) with no map churn.
    if (ru.dirty->empty()) {
        result_.blockMap = prev.blockMap;
        result_.insnMap = prev.insnMap;
        result_.raPairs = prev.raPairs;
        result_.instrBytes = *ru.instrBytes;
        result_.funcSpans = spans;
        result_.reusedFunctions =
            static_cast<unsigned>(funcs.size());
        fillClones();
        return true;
    }

    // Re-emit each dirty function at its exact previous base. A size
    // change would shift every later function: bail to a full run.
    std::vector<FuncStream> streams(funcs.size());
    std::vector<bool> emitted(funcs.size(), false);
    for (std::size_t i = 0; i < funcs.size(); ++i) {
        if (!ru.dirty->count(funcs[i]->entry))
            continue;
        streams[i] = emitFunctionStream(*funcs[i], spans[i].base);
        if (streams[i].size != spans[i].size)
            return false;
        emitted[i] = true;
    }

    // Final addresses: bulk-copy the previous maps, then patch only
    // the dirty functions — erase the stale entries inside each dirty
    // function's original [entry, end) extent and insert the fresh
    // stream offsets. The per-instruction find+insert rebuild this
    // replaces dominated the warm one-function-edit path (~2.5 ms of
    // a ~10 ms libxul request); an ordered copy plus a handful of
    // range splices is O(n) with no searches. Reused functions are
    // byte-unchanged under the dirty-set contract, so their previous
    // entries stand verbatim; each one's entry block is still looked
    // up as a containment check so a manifest that does not actually
    // cover the current CFG falls back to a full emission instead of
    // producing a silently wrong map.
    result_.blockMap = prev.blockMap;
    result_.insnMap = prev.insnMap;
    for (std::size_t i = 0; i < funcs.size(); ++i) {
        const Function &func = *funcs[i];
        if (!emitted[i]) {
            if (!prev.blockMap.count(func.entry))
                return false;
            continue;
        }
        result_.blockMap.erase(
            result_.blockMap.lower_bound(func.entry),
            result_.blockMap.lower_bound(func.end));
        result_.insnMap.erase(
            result_.insnMap.lower_bound(func.entry),
            result_.insnMap.lower_bound(func.end));
        const FuncStream &fs = streams[i];
        for (const auto &[orig, off] : fs.blockOffsets)
            result_.blockMap[orig] = fs.base + off;
        for (const auto &[orig, off] : fs.insnOffsets)
            result_.insnMap[orig] = fs.base + off;
    }

    // RA pairs in emission order: the previous pass appended them
    // stream by stream, so they are sorted by relocated address and
    // a reused function's pairs are exactly the previous pairs whose
    // relocated address falls in its span — found by binary search,
    // not a full scan per function (the full scan made warm-path
    // relocation quadratic in the function count).
    icp_assert(std::is_sorted(prev.raPairs.begin(),
                              prev.raPairs.end(),
                              [](const auto &a, const auto &b) {
                                  return a.first < b.first;
                              }),
               "previous RA pairs not in emission order");
    for (std::size_t i = 0; i < funcs.size(); ++i) {
        if (emitted[i]) {
            const FuncStream &fs = streams[i];
            for (const auto &[off, orig] : fs.raOffsets)
                result_.raPairs.emplace_back(fs.base + off, orig);
            continue;
        }
        const Addr lo = spans[i].base;
        const Addr hi = spans[i].base + spans[i].size;
        auto it = std::lower_bound(
            prev.raPairs.begin(), prev.raPairs.end(), lo,
            [](const std::pair<Addr, Addr> &p, Addr v) {
                return p.first < v;
            });
        for (; it != prev.raPairs.end() && it->first < hi; ++it)
            result_.raPairs.push_back(*it);
    }

    // Splice the dirty functions' finalized bytes into a copy of the
    // previous payload; everything else is byte-identical.
    std::vector<std::uint8_t> out = *ru.instrBytes;
    for (std::size_t i = 0; i < funcs.size(); ++i) {
        if (!emitted[i])
            continue;
        FuncStream &fs = streams[i];
        for (const auto &[addr, label] : fs.externalLabels) {
            auto target = result_.blockMap.find(addr);
            icp_assert(target != result_.blockMap.end(),
                       "external block 0x%llx not relocated",
                       static_cast<unsigned long long>(addr));
            fs.as->bindAt(label, target->second);
        }
        fs.bytes = fs.as->finalize();
        const Offset off = fs.base - cfg_opts_.instrBase;
        if (off + fs.bytes.size() > out.size())
            return false;
        std::copy(fs.bytes.begin(), fs.bytes.end(),
                  out.begin() + off);
    }
    result_.instrBytes = std::move(out);

    result_.funcSpans = spans;
    for (std::size_t i = 0; i < funcs.size(); ++i) {
        if (emitted[i])
            ++result_.emittedFunctions;
        else
            ++result_.reusedFunctions;
    }
    fillClones();
    return true;
}

EngineResult
Engine::run()
{
    planClones();

    // Emission order and the set of relocated blocks.
    std::vector<const Function *> funcs;
    for (const auto &[entry, func] : cfg_.functions) {
        if (!instrumented_.count(entry))
            continue;
        funcs.push_back(&func);
        for (const auto &[start, block] : func.blocks)
            relocatedBlocks_.push_back(start);
    }
    std::sort(relocatedBlocks_.begin(), relocatedBlocks_.end());
    if (cfg_opts_.functionOrder == OrderPolicy::reversed)
        std::reverse(funcs.begin(), funcs.end());

    assignCounters(funcs);

    if (cfg_opts_.reuse.valid()) {
        if (tryReuseRun(funcs))
            return result_;
        // Fall back to a full emission; discard partial state.
        EngineResult fresh;
        fresh.clones = std::move(result_.clones);
        fresh.blockCounters = std::move(result_.blockCounters);
        fresh.entryCounters = std::move(result_.entryCounters);
        result_ = std::move(fresh);
    }

    const Addr align =
        std::max(cfg_opts_.functionAlign, arch_.instrAlign);
    const unsigned threads = effectiveThreads(cfg_opts_.threads);
    std::vector<FuncStream> streams(funcs.size());

    if (threads <= 1 || funcs.size() <= 1) {
        // Sequential: every function emits at its exact final base,
        // so address-dependent selections match the historical
        // single-assembler layout by construction.
        Addr cursor = cfg_opts_.instrBase;
        for (std::size_t i = 0; i < funcs.size(); ++i) {
            const Addr base = alignUpAddr(cursor, align);
            streams[i] = emitFunctionStream(*funcs[i], base);
            cursor = base + streams[i].size;
        }
    } else {
        // Parallel: emit every function speculatively at the window
        // base, then lay out in order, re-validating each stream's
        // recorded address-dependent decisions against its final
        // base. A stream whose decisions all hold is position-
        // correct after a rebase (lengths are address-independent);
        // a flipped decision — only possible within ±window of a
        // direct-branch range boundary — re-emits that one function
        // at its exact base. Output is bit-identical to sequential.
        ThreadPool::shared().parallelFor(
            funcs.size(), threads, [&](std::size_t i) {
                streams[i] = emitFunctionStream(
                    *funcs[i], cfg_opts_.instrBase);
            });
        Addr cursor = cfg_opts_.instrBase;
        for (std::size_t i = 0; i < funcs.size(); ++i) {
            const Addr base = alignUpAddr(cursor, align);
            if (decisionsHold(streams[i], base)) {
                streams[i].as->rebase(base);
                streams[i].base = base;
            } else {
                streams[i] = emitFunctionStream(*funcs[i], base);
            }
            cursor = base + streams[i].size;
        }
    }

    // Deterministic fixup: final addresses for every block and
    // instruction, RA pairs in emission order.
    for (const FuncStream &fs : streams) {
        result_.funcSpans.push_back(
            {fs.func->entry, fs.base, fs.size});
        for (const auto &[orig, off] : fs.blockOffsets)
            result_.blockMap[orig] = fs.base + off;
        for (const auto &[orig, off] : fs.insnOffsets)
            result_.insnMap[orig] = fs.base + off;
        for (const auto &[off, orig] : fs.raOffsets)
            result_.raPairs.emplace_back(fs.base + off, orig);
    }

    // Patch cross-function branches (bind external labels to final
    // addresses) and encode each stream; streams are independent.
    ThreadPool::shared().parallelFor(
        streams.size(), threads, [&](std::size_t i) {
            FuncStream &fs = streams[i];
            for (const auto &[addr, label] : fs.externalLabels) {
                auto target = result_.blockMap.find(addr);
                icp_assert(target != result_.blockMap.end(),
                           "external block 0x%llx not relocated",
                           static_cast<unsigned long long>(addr));
                fs.as->bindAt(label, target->second);
            }
            fs.bytes = fs.as->finalize();
        });

    // Concatenate with the same inter-function nop padding the
    // single-assembler alignTo() produced.
    std::vector<std::uint8_t> out;
    Addr addr = cfg_opts_.instrBase;
    for (const FuncStream &fs : streams) {
        appendAlignment(out, addr, fs.base);
        out.insert(out.end(), fs.bytes.begin(), fs.bytes.end());
        addr += fs.bytes.size();
    }
    result_.instrBytes = std::move(out);
    result_.emittedFunctions =
        static_cast<unsigned>(streams.size());

    fillClones();
    return result_;
}

} // namespace

EngineResult
relocateFunctions(const CfgModule &cfg,
                  const std::set<Addr> &instrumented,
                  const EngineConfig &config)
{
    StageTimer timer(Stage::relocate);
    Engine engine(cfg, instrumented, config);
    return engine.run();
}

// --- IncrementalEngine ------------------------------------------------------

struct IncrementalEngine::State
{
    /** Carries only the image pointer; the per-function entry points
     *  never touch Engine::cfg_.functions. */
    CfgModule cfg;
    std::set<Addr> instrumented; ///< unused by per-function paths
    Engine engine;
    Addr align = 0;
    Addr cursor = 0;

    // Flat maps, appended per function and kept sorted by original
    // address (functions arrive in ascending entry order; blocks of
    // one function sort locally). At browser scale these are
    // millions of entries — a node-based map would dominate the
    // coordinator's memory.
    std::vector<std::pair<Addr, Addr>> blockMap;
    std::vector<std::pair<Addr, Addr>> insnMap;
    std::vector<std::pair<Addr, Addr>> raPairs;

    static CfgModule
    makeCfg(const BinaryImage &image)
    {
        CfgModule m;
        m.image = &image;
        return m;
    }

    State(const BinaryImage &image, const EngineConfig &config)
        : cfg(makeCfg(image)), engine(cfg, instrumented, config)
    {
        align = std::max<Addr>(config.functionAlign,
                               image.archInfo().instrAlign);
        cursor = config.instrBase;
    }
};

IncrementalEngine::IncrementalEngine(const BinaryImage &image,
                                     const EngineConfig &config)
    : st_(std::make_unique<State>(image, config))
{
    icp_assert(config.functionOrder == OrderPolicy::original,
               "incremental emission requires original "
               "function order");
    icp_assert(!config.reuse.valid(),
               "incremental emission does not take a reuse pass");
}

IncrementalEngine::~IncrementalEngine() = default;

void
IncrementalEngine::planFunction(const Function &func)
{
    State &st = *st_;
    st.engine.planFunctionClones(func);
    st.engine.assignCountersFor(func);
    // Ascending entry order keeps the flat vector sorted without a
    // global sort pass.
    icp_assert(st.engine.relocatedBlocks_.empty() ||
                   st.engine.relocatedBlocks_.back() < func.entry,
               "planFunction out of address order");
    for (const auto &[start, block] : func.blocks) {
        (void)block;
        st.engine.relocatedBlocks_.push_back(start);
    }
}

FuncSpan
IncrementalEngine::layoutFunction(const Function &func)
{
    State &st = *st_;
    const Addr base = alignUpAddr(st.cursor, st.align);
    Engine::FuncStream fs = st.engine.emitFunctionStream(func, base);
    st.cursor = base + fs.size;

    // Record final addresses; the bytes are discarded (they cannot
    // finalize until every function has a layout address).
    const auto byOrig = [](const std::pair<Addr, Addr> &a,
                           const std::pair<Addr, Addr> &b) {
        return a.first < b.first;
    };
    const std::size_t b0 = st.blockMap.size();
    for (const auto &[orig, off] : fs.blockOffsets)
        st.blockMap.emplace_back(orig, base + off);
    std::sort(st.blockMap.begin() +
                  static_cast<std::ptrdiff_t>(b0),
              st.blockMap.end(), byOrig);
    const std::size_t i0 = st.insnMap.size();
    for (const auto &[orig, off] : fs.insnOffsets)
        st.insnMap.emplace_back(orig, base + off);
    std::sort(st.insnMap.begin() +
                  static_cast<std::ptrdiff_t>(i0),
              st.insnMap.end(), byOrig);
    for (const auto &[off, orig] : fs.raOffsets)
        st.raPairs.emplace_back(base + off, orig);

    return {func.entry, base, fs.size};
}

Addr
IncrementalEngine::layoutEnd() const
{
    return st_->cursor;
}

std::vector<std::uint8_t>
IncrementalEngine::emitFunction(const Function &func, Addr base)
{
    State &st = *st_;
    Engine::FuncStream fs = st.engine.emitFunctionStream(func, base);
    for (const auto &[addr, label] : fs.externalLabels) {
        std::optional<Addr> target = lookupBlock(addr);
        icp_assert(target.has_value(),
                   "external block 0x%llx not relocated",
                   static_cast<unsigned long long>(addr));
        fs.as->bindAt(label, *target);
    }
    return fs.as->finalize();
}

std::vector<std::uint8_t>
IncrementalEngine::paddingBytes(Addr from, Addr to) const
{
    // The same bytes Engine::appendAlignment produces for the gap.
    std::vector<std::uint8_t> out;
    Addr addr = from;
    while (addr < to) {
        const bool ok = st_->engine.arch_.codec->encode(
            makeNop(), addr, out);
        icp_assert(ok, "nop encode failed");
        addr = from + out.size();
    }
    icp_assert(addr == to, "alignment overshot");
    return out;
}

namespace
{

std::optional<Addr>
flatLookup(const std::vector<std::pair<Addr, Addr>> &map, Addr orig)
{
    auto it = std::lower_bound(
        map.begin(), map.end(), orig,
        [](const std::pair<Addr, Addr> &p, Addr v) {
            return p.first < v;
        });
    if (it == map.end() || it->first != orig)
        return std::nullopt;
    return it->second;
}

} // namespace

std::optional<Addr>
IncrementalEngine::lookupBlock(Addr orig) const
{
    return flatLookup(st_->blockMap, orig);
}

std::optional<Addr>
IncrementalEngine::lookupInsn(Addr orig) const
{
    return flatLookup(st_->insnMap, orig);
}

const std::vector<std::pair<Addr, Addr>> &
IncrementalEngine::raPairs() const
{
    return st_->raPairs;
}

const std::vector<TableClone> &
IncrementalEngine::clones() const
{
    return st_->engine.result_.clones;
}

const std::map<Addr, std::uint32_t> &
IncrementalEngine::blockCounters() const
{
    return st_->engine.result_.blockCounters;
}

const std::map<Addr, std::uint32_t> &
IncrementalEngine::entryCounters() const
{
    return st_->engine.result_.entryCounters;
}

std::vector<std::uint8_t>
IncrementalEngine::cloneBytes() const
{
    std::vector<std::uint8_t> out;
    const auto lookup = [&](Addr a) { return lookupBlock(a); };
    for (const TableClone &clone : st_->engine.result_.clones) {
        fillCloneEntries(clone,
                         st_->engine.cfg_opts_.newRodataBase, lookup,
                         out);
    }
    return out;
}

} // namespace icp
