#include "analysis/funcptr.hh"

#include "support/logging.hh"

namespace icp
{

FuncPtrScanner::FuncPtrScanner(const BinaryImage &image)
    : image_(image), fixed_(image.archInfo().fixedLength)
{
    // Function ranges from the symbol table. CFG construction defines
    // Function::end as sym.addr + sym.size, so this is the same map
    // analyzeFuncPtrs historically built from the module CFG.
    for (const Symbol *sym : image.functionSymbols())
        ranges_[sym->addr] = sym->addr + sym->size;

    // 1. Relocation-backed data cells pointing at function entries.
    for (const auto &rel : image.relocs) {
        const Addr value = static_cast<Addr>(rel.addend);
        if (isEntry(value)) {
            FuncPtrDef def;
            def.kind = FuncPtrDef::Kind::dataCell;
            def.site = rel.site;
            def.funcEntry = value;
            def.hasReloc = true;
            cellDefIdx_[rel.site] = result_.defs.size();
            result_.defs.push_back(def);
        } else if (!containing(value)) {
            // Pointer-shaped relocation to no known function — the
            // Go .vtab obfuscation lands here and stays unrewritten.
            ++result_.unclassifiedRelocs;
        }
    }

    // 2. Non-PIE images have no relocations; scan data sections for
    // 8-aligned words matching function entries exactly.
    if (!image.pie) {
        for (const auto &sec : image.sections) {
            if (sec.kind != SectionKind::data &&
                sec.kind != SectionKind::rodata)
                continue;
            for (Offset off = 0; off + 8 <= sec.bytes.size();
                 off += 8) {
                std::uint64_t v = 0;
                for (unsigned b = 0; b < 8; ++b)
                    v |= static_cast<std::uint64_t>(
                             sec.bytes[off + b]) << (8 * b);
                if (!isEntry(v))
                    continue;
                FuncPtrDef def;
                def.kind = FuncPtrDef::Kind::dataCell;
                def.site = sec.addr + off;
                def.funcEntry = v;
                cellDefIdx_[def.site] = result_.defs.size();
                result_.defs.push_back(def);
            }
        }
    }
}

std::optional<Addr>
FuncPtrScanner::containing(Addr a) const
{
    auto it = ranges_.upper_bound(a);
    if (it == ranges_.begin())
        return std::nullopt;
    --it;
    if (a < it->second)
        return it->first;
    return std::nullopt;
}

// 3. Code scan: immediates and pc-relative address formation
// producing function entries; forward slice loads of known cells
// through arithmetic (Listing 1's +1).
void
FuncPtrScanner::scanFunction(const Function &func)
{
    for (const auto &[bstart, block] : func.blocks) {
        (void)bstart;
        struct Track
        {
            enum class Kind { none, constant, cellPtr };
            Kind kind = Kind::none;
            std::uint64_t c = 0;
            std::vector<Addr> defAddrs;
            Addr cell = 0;
        };
        std::unordered_map<unsigned, Track> regs;
        auto get = [&](Reg r) -> Track {
            auto it = regs.find(static_cast<unsigned>(r));
            return it == regs.end() ? Track{} : it->second;
        };
        auto set = [&](Reg r, Track t) {
            regs[static_cast<unsigned>(r)] = std::move(t);
        };
        auto kill = [&](Reg r) {
            if (r != Reg::none)
                regs.erase(static_cast<unsigned>(r));
        };
        auto recordConstDef = [&](const Track &t,
                                  FuncPtrDef::Kind kind) {
            if (!isEntry(t.c))
                return;
            FuncPtrDef def;
            def.kind = kind;
            def.site = t.defAddrs.front();
            def.defAddrs = t.defAddrs;
            def.funcEntry = t.c;
            result_.defs.push_back(def);
        };

        for (const auto &in : block.insns) {
            switch (in.op) {
              case Opcode::MovImm: {
                if (!fixed_) {
                    Track t;
                    t.kind = Track::Kind::constant;
                    t.c = static_cast<std::uint64_t>(in.imm);
                    t.defAddrs = {in.addr};
                    recordConstDef(t, FuncPtrDef::Kind::codeImm);
                    set(in.rd, t);
                    break;
                }
                Track t = get(in.rd);
                if (!in.movKeep) {
                    t = Track{};
                    t.kind = Track::Kind::constant;
                    t.c = static_cast<std::uint64_t>(
                              in.imm & 0xffff)
                          << in.movShift;
                    t.defAddrs = {in.addr};
                } else if (t.kind == Track::Kind::constant) {
                    t.c = (t.c & ~(0xffffULL << in.movShift)) |
                          (static_cast<std::uint64_t>(
                               in.imm & 0xffff)
                           << in.movShift);
                    t.defAddrs.push_back(in.addr);
                    if (in.movShift == 48)
                        recordConstDef(
                            t, FuncPtrDef::Kind::codeImm);
                } else {
                    kill(in.rd);
                    break;
                }
                set(in.rd, t);
                break;
              }
              case Opcode::Lea: {
                Track t;
                t.kind = Track::Kind::constant;
                t.c = in.target;
                t.defAddrs = {in.addr};
                recordConstDef(t, FuncPtrDef::Kind::codePcRel);
                set(in.rd, t);
                break;
              }
              case Opcode::AdrPage: {
                Track t;
                t.kind = Track::Kind::constant;
                t.c = in.target;
                t.defAddrs = {in.addr};
                set(in.rd, t);
                break;
              }
              case Opcode::AddisToc: {
                Track t;
                t.kind = Track::Kind::constant;
                t.c = image_.tocBase +
                      (static_cast<std::uint64_t>(in.imm) << 16);
                t.defAddrs = {in.addr};
                set(in.rd, t);
                break;
              }
              case Opcode::AddImm: {
                Track t = get(in.rd);
                if (t.kind == Track::Kind::constant) {
                    t.c += static_cast<std::uint64_t>(in.imm);
                    t.defAddrs.push_back(in.addr);
                    // The completed pc-relative pair.
                    recordConstDef(t,
                                   FuncPtrDef::Kind::codePcRel);
                    set(in.rd, t);
                } else if (t.kind == Track::Kind::cellPtr) {
                    // Forward slice: a known cell's pointer gets
                    // displaced before use (Listing 1).
                    auto idx = cellDefIdx_.find(t.cell);
                    if (idx != cellDefIdx_.end()) {
                        result_.defs[idx->second].delta += in.imm;
                    }
                    kill(in.rd);
                } else {
                    kill(in.rd);
                }
                break;
              }
              case Opcode::Load: {
                const Track base = get(in.rs1);
                if (base.kind == Track::Kind::constant) {
                    const Addr cell =
                        base.c +
                        static_cast<std::uint64_t>(in.imm);
                    if (cellDefIdx_.count(cell)) {
                        Track t;
                        t.kind = Track::Kind::cellPtr;
                        t.cell = cell;
                        set(in.rd, t);
                        break;
                    }
                }
                kill(in.rd);
                break;
              }
              case Opcode::MovReg:
                set(in.rd, get(in.rs1));
                break;
              default:
                kill(in.rd);
                break;
            }
        }
    }
}

FuncPtrAnalysisResult
analyzeFuncPtrs(const CfgModule &cfg)
{
    icp_assert(cfg.image, "no image");
    FuncPtrScanner scanner(*cfg.image);
    for (const auto &[entry, func] : cfg.functions) {
        (void)entry;
        scanner.scanFunction(func);
    }
    return scanner.take();
}

} // namespace icp
