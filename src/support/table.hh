/**
 * @file
 * Plain-text table renderer used by the benchmark harness to print
 * paper-style result tables to the console.
 */

#ifndef ICP_SUPPORT_TABLE_HH
#define ICP_SUPPORT_TABLE_HH

#include <string>
#include <vector>

namespace icp
{

/**
 * A simple left-padded text table. Columns are sized to the widest
 * cell; the first row added is the header.
 */
class TextTable
{
  public:
    explicit TextTable(std::vector<std::string> header);

    void addRow(std::vector<std::string> cells);

    /** Insert a horizontal separator before the next row. */
    void addSeparator();

    /** Render to a string with column separators and a header rule. */
    std::string render() const;

    /**
     * Render as a JSON array of row objects keyed by the header
     * cells (separators are skipped) — machine-readable form of the
     * same data for the benches' --json output.
     */
    std::string json() const;

  private:
    std::vector<std::string> header_;
    // A row with no cells encodes a separator.
    std::vector<std::vector<std::string>> rows_;
};

} // namespace icp

#endif // ICP_SUPPORT_TABLE_HH
