/**
 * @file
 * Per-function data-reference dependency analysis: the read-set of
 * data-section bytes a function's analysis and emitted clones
 * consume. The jump-table slice dereferences table entries in
 * .rodata/.data (jump_table.cc reads exactly
 * [tableAddr, tableAddr + entryCount * entrySize)), and the
 * func-ptr/literal-pool slice walks constant-base loads of data
 * cells; both are recorded here as a compact sorted interval set
 * with an FNV-1a content hash per range.
 *
 * Two consumers:
 *
 *  - Overlap-keyed invalidation (RewriteSession::loadInput): a data
 *    edit dirties exactly the functions whose recorded ranges
 *    overlap the changed bytes — a string-table edit re-analyzes and
 *    re-emits zero functions — and the analysis cache validates a
 *    hit by re-hashing its recorded ranges against the current image
 *    instead of folding every data byte into the key.
 *
 *  - Audit (src/verify lint rules datadep-missing / datadep-stale /
 *    datadep-overbroad): the recorded read-set is a checkable
 *    artifact; the verifier recomputes the expected set from the
 *    original CFG and compares.
 *
 * The interval-set and hash types are deliberately free of any
 * session or cache dependency so a future cross-binary function
 * dedup index can reuse them as-is.
 */

#ifndef ICP_ANALYSIS_DATADEPS_HH
#define ICP_ANALYSIS_DATADEPS_HH

#include <cstdint>
#include <set>
#include <vector>

#include "support/types.hh"

namespace icp
{

class BinaryImage;
struct Function;

/** One read byte range [lo, hi) and the FNV-1a hash of its bytes. */
struct DepRange
{
    Addr lo = 0;
    Addr hi = 0;
    std::uint64_t hash = 0;

    bool operator==(const DepRange &) const = default;
};

/**
 * A compact sorted interval set of data bytes one function reads.
 * Build with add() (any order, overlaps fine), then finalize()
 * against an image to coalesce and stamp content hashes. A
 * default-constructed (empty) set is valid: the function reads no
 * data bytes, and validate() is trivially true.
 */
class DataDeps
{
  public:
    /** Record a read of [lo, hi); ignored when empty or inverted. */
    void add(Addr lo, Addr hi);

    /** Sort, coalesce adjacent/overlapping ranges, hash contents. */
    void finalize(const BinaryImage &image);

    /**
     * True when every recorded range still hashes to its recorded
     * value in @p image — i.e. no byte this function's analysis read
     * has changed, so a cache hit keyed on code bytes alone is safe.
     */
    bool validate(const BinaryImage &image) const;

    /** True when [lo, hi) intersects any recorded range. */
    bool overlaps(Addr lo, Addr hi) const;

    /** True when [lo, hi) is fully inside one recorded range. */
    bool covers(Addr lo, Addr hi) const;

    std::uint64_t totalBytes() const;

    bool empty() const { return ranges_.empty(); }
    std::size_t size() const { return ranges_.size(); }
    const std::vector<DepRange> &ranges() const { return ranges_; }

    /** Install already-finalized ranges (cache-store decode path). */
    void setRanges(std::vector<DepRange> ranges);

    bool operator==(const DataDeps &) const = default;

  private:
    std::vector<DepRange> ranges_; ///< sorted, disjoint, finalized
};

/**
 * FNV-1a over the image bytes at [lo, hi) (zero fill included, the
 * same bytes readBytes() materializes). 0 when the range is not
 * fully mapped by any section.
 */
std::uint64_t hashImageRange(const BinaryImage &image, Addr lo,
                             Addr hi);

/**
 * Compute @p func's data read-set against @p image: the extents of
 * its resolved jump tables that live outside its own code range,
 * plus every constant-base load of a mapped non-executable address
 * (function-pointer cells, literal pools, globals) found by the same
 * per-block constant tracking the func-ptr slice uses. The result is
 * finalized (sorted, coalesced, hashed).
 */
DataDeps computeDataDeps(const Function &func,
                         const BinaryImage &image);

/**
 * An overlap index over many functions' read-sets: flat sorted
 * ranges tagged with their owning function entry. Build once per
 * invalidation query set (loadInput); query per changed byte range.
 */
class DepIndex
{
  public:
    /** Add one function's finalized read-set. */
    void add(Addr funcEntry, const DataDeps &deps);

    /** Sort; call after the last add() and before overlapping(). */
    void build();

    /** Collect owners of ranges intersecting [lo, hi) into @p out. */
    void overlapping(Addr lo, Addr hi, std::set<Addr> &out) const;

    std::size_t rangeCount() const { return nodes_.size(); }

  private:
    struct Node
    {
        Addr lo = 0;
        Addr hi = 0;
        Addr owner = 0;
    };
    std::vector<Node> nodes_;
    bool built_ = false;
};

} // namespace icp

#endif // ICP_ANALYSIS_DATADEPS_HH
