
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/isa/arch.cc" "src/isa/CMakeFiles/icp_isa.dir/arch.cc.o" "gcc" "src/isa/CMakeFiles/icp_isa.dir/arch.cc.o.d"
  "/root/repo/src/isa/assembler.cc" "src/isa/CMakeFiles/icp_isa.dir/assembler.cc.o" "gcc" "src/isa/CMakeFiles/icp_isa.dir/assembler.cc.o.d"
  "/root/repo/src/isa/codec_fixed.cc" "src/isa/CMakeFiles/icp_isa.dir/codec_fixed.cc.o" "gcc" "src/isa/CMakeFiles/icp_isa.dir/codec_fixed.cc.o.d"
  "/root/repo/src/isa/codec_x64.cc" "src/isa/CMakeFiles/icp_isa.dir/codec_x64.cc.o" "gcc" "src/isa/CMakeFiles/icp_isa.dir/codec_x64.cc.o.d"
  "/root/repo/src/isa/instruction.cc" "src/isa/CMakeFiles/icp_isa.dir/instruction.cc.o" "gcc" "src/isa/CMakeFiles/icp_isa.dir/instruction.cc.o.d"
  "/root/repo/src/isa/reg_usage.cc" "src/isa/CMakeFiles/icp_isa.dir/reg_usage.cc.o" "gcc" "src/isa/CMakeFiles/icp_isa.dir/reg_usage.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/icp_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
