#include "rewrite/engine.hh"

#include <algorithm>

#include "isa/assembler.hh"
#include "isa/bytes.hh"
#include "codegen/compiler.hh"
#include "sim/runtime_lib.hh"
#include "support/logging.hh"

namespace icp
{

namespace
{

/** How a relocated instruction's address operand is substituted. */
struct Subst
{
    enum class Role : std::uint8_t
    {
        whole,  ///< Lea/MovImm: replace the full target
        hi,     ///< AddisToc / AdrPage half of a pair
        lo,     ///< AddImm half of a pair
    };
    Role role = Role::whole;
    Addr newTarget = 0;
};

class Engine
{
  public:
    Engine(const CfgModule &cfg, const std::set<Addr> &instrumented,
           const EngineConfig &config)
        : cfg_(cfg), image_(*cfg.image),
          arch_(cfg.image->archInfo()), instrumented_(instrumented),
          cfg_opts_(config)
    {
    }

    EngineResult run();

  private:
    void planClones();
    void emitFunction(Assembler &as, const Function &func);
    void emitBlock(Assembler &as, const Function &func,
                   const Block &block, Addr fallthrough_next);
    void emitTranslated(Assembler &as, const Function &func,
                        const Instruction &in);
    void fillClones();

    Assembler::Label
    labelFor(Addr block_start)
    {
        auto it = blockLabels_.find(block_start);
        icp_assert(it != blockLabels_.end(),
                   "no label for block 0x%llx",
                   static_cast<unsigned long long>(block_start));
        return it->second;
    }

    bool
    isRelocatedBlock(Addr a) const
    {
        return blockLabels_.count(a) > 0;
    }

    const CfgModule &cfg_;
    const BinaryImage &image_;
    const ArchInfo &arch_;
    const std::set<Addr> &instrumented_;
    EngineConfig cfg_opts_;

    EngineResult result_;
    std::map<Addr, Assembler::Label> blockLabels_;
    std::map<Addr, Subst> substs_;      ///< per base-def instruction
    std::map<Addr, const JumpTable *> widenLoads_;
    std::uint32_t nextCounter_ = 0;
    Assembler *as_ = nullptr;
};

void
Engine::planClones()
{
    if (cfg_opts_.mode == RewriteMode::dir)
        return;
    Addr cursor = cfg_opts_.newRodataBase;
    for (const auto &[entry, func] : cfg_.functions) {
        if (!instrumented_.count(entry))
            continue;
        for (const auto &jt : func.jumpTables) {
            TableClone clone;
            clone.source = &jt;
            // Anchor-relative sub-word entries must widen to 4 bytes
            // because relocated distances can exceed (and precede)
            // the original ones (§5.1).
            clone.widened = jt.entrySize < 4;
            clone.entrySize = clone.widened ? 4 : jt.entrySize;
            cursor = (cursor + 7) & ~Addr{7};
            clone.cloneAddr = cursor;
            cursor += std::uint64_t{jt.entryCount} * clone.entrySize;
            result_.clones.push_back(clone);

            // Substitutions for the base-forming instructions.
            if (jt.base && *jt.base != jt.tableAddr) {
                // Anchor-relative: the anchor is code and relocates
                // with the function; only the table address changes.
            }
            const auto &defs = jt.baseDefAddrs;
            if (defs.size() == 1) {
                substs_[defs[0]] = {Subst::Role::whole,
                                    clone.cloneAddr};
            } else if (defs.size() >= 2) {
                substs_[defs[0]] = {Subst::Role::hi, clone.cloneAddr};
                substs_[defs[1]] = {Subst::Role::lo, clone.cloneAddr};
            }
            if (clone.widened)
                widenLoads_[jt.loadAddr] = &jt;
        }
    }
}

void
Engine::emitTranslated(Assembler &as, const Function &func,
                       const Instruction &in)
{
    const Addr orig_next = in.addr + in.length;

    // Jump-table base substitution (jt/func-ptr modes).
    auto subst = substs_.find(in.addr);
    if (subst != substs_.end() &&
        cfg_opts_.mode != RewriteMode::dir) {
        Instruction patched = in;
        const Addr target = subst->second.newTarget;
        switch (subst->second.role) {
          case Subst::Role::whole:
            if (in.op == Opcode::MovImm) {
                patched.imm = static_cast<std::int64_t>(target);
            } else {
                patched.target = target;
            }
            break;
          case Subst::Role::hi:
            if (in.op == Opcode::AddisToc) {
                const std::int64_t off =
                    static_cast<std::int64_t>(target) -
                    static_cast<std::int64_t>(image_.tocBase);
                patched.imm = (off + 0x8000) >> 16;
            } else { // AdrPage
                patched.op = Opcode::AdrPage;
                patched.target = target;
            }
            break;
          case Subst::Role::lo: {
            std::int64_t lo;
            if (arch_.hasToc) {
                const std::int64_t off =
                    static_cast<std::int64_t>(target) -
                    static_cast<std::int64_t>(image_.tocBase);
                lo = signExtend(static_cast<std::uint64_t>(off), 16);
            } else {
                const Addr page = ((target + 0x8000) >> 16) << 16;
                lo = static_cast<std::int64_t>(target) -
                     static_cast<std::int64_t>(page);
            }
            patched.imm = lo;
            break;
          }
        }
        as.emit(patched);
        return;
    }

    // Widened jump-table entry loads (a64 1/2-byte -> 4-byte read).
    auto widen = widenLoads_.find(in.addr);
    if (widen != widenLoads_.end() &&
        cfg_opts_.mode != RewriteMode::dir) {
        Instruction patched = in;
        patched.memSize = 4;
        patched.signedLoad = true;
        as.emit(patched);
        return;
    }

    // Materialize an original-space code address into a register in
    // a position-correct way (pc-relative / TOC-relative), as call
    // emulation must on position independent code.
    auto emitMaterializeAddr = [&](Reg rd, Addr target) {
        if (arch_.arch == Arch::x64) {
            as.emit(makeLea(rd, target));
        } else if (arch_.hasToc) {
            const std::int64_t off =
                static_cast<std::int64_t>(target) -
                static_cast<std::int64_t>(image_.tocBase);
            as.emit(makeAddisToc(rd, static_cast<std::int32_t>(
                                         (off + 0x8000) >> 16)));
            as.emit(makeAddImm(
                rd, signExtend(static_cast<std::uint64_t>(off), 16)));
        } else {
            as.emit(makeAdrPage(rd, target));
            const Addr page = ((target + 0x8000) >> 16) << 16;
            as.emit(makeAddImm(rd,
                               static_cast<std::int64_t>(target) -
                                   static_cast<std::int64_t>(page)));
        }
    };
    auto emitEmulatedRa = [&](Addr orig_ra) {
        if (arch_.hasLinkRegister) {
            emitMaterializeAddr(Reg::lr, orig_ra);
        } else {
            emitMaterializeAddr(Reg::r13, orig_ra);
            as.emit(makePush(Reg::r13));
        }
    };

    // Branches from .instr back into original space can exceed the
    // fixed-ISA direct reach (e.g. ppc64le ±32 MB with large data
    // sections); emit a veneer through r13, which the synthetic ABI
    // reserves for the rewriter.
    auto needsVeneer = [&](Addr target) {
        if (!arch_.fixedLength)
            return false;
        const std::int64_t d = static_cast<std::int64_t>(target) -
                               static_cast<std::int64_t>(as.here());
        return d < -arch_.directJmpRange + 64 ||
               d > arch_.directJmpRange - 64;
    };
    auto emitVeneerTarget = [&](Addr target) {
        if (arch_.hasToc) {
            const std::int64_t off =
                static_cast<std::int64_t>(target) -
                static_cast<std::int64_t>(image_.tocBase);
            as.emit(makeAddisToc(
                Reg::r13,
                static_cast<std::int32_t>((off + 0x8000) >> 16)));
            as.emit(makeAddImm(
                Reg::r13,
                signExtend(static_cast<std::uint64_t>(off), 16)));
        } else {
            as.emit(makeAdrPage(Reg::r13, target));
            const Addr page = ((target + 0x8000) >> 16) << 16;
            as.emit(makeAddImm(Reg::r13,
                               static_cast<std::int64_t>(target) -
                                   static_cast<std::int64_t>(page)));
        }
    };

    switch (in.op) {
      case Opcode::Jmp: {
        if (isRelocatedBlock(in.target)) {
            as.emitToLabel(makeJmp(0), labelFor(in.target));
        } else if (needsVeneer(in.target)) {
            emitVeneerTarget(in.target);
            as.emit(makeJmpInd(Reg::r13));
        } else {
            as.emit(makeJmp(in.target)); // stays in original space
        }
        return;
      }
      case Opcode::JmpCond: {
        if (isRelocatedBlock(in.target)) {
            Instruction jcc = makeJmpCond(in.cond, 0);
            as.emitToLabel(jcc, labelFor(in.target));
        } else {
            as.emit(makeJmpCond(in.cond, in.target));
        }
        return;
      }
      case Opcode::Call: {
        if (cfg_opts_.callEmulation) {
            // Call emulation: materialize the ORIGINAL return
            // address, then branch. Returns land in original code
            // (the fall-through CFL block's trampoline bounces).
            emitEmulatedRa(orig_next);
            if (isRelocatedBlock(in.target)) {
                as.emitToLabel(makeJmp(0), labelFor(in.target));
            } else if (needsVeneer(in.target)) {
                emitVeneerTarget(in.target);
                as.emit(makeJmpInd(Reg::r13));
            } else {
                as.emit(makeJmp(in.target));
            }
        } else {
            if (isRelocatedBlock(in.target)) {
                as.emitToLabel(makeCall(0), labelFor(in.target));
            } else if (needsVeneer(in.target)) {
                emitVeneerTarget(in.target);
                as.emit(makeCallInd(Reg::r13));
            } else {
                as.emit(makeCall(in.target));
            }
            result_.raPairs.emplace_back(as.here(), orig_next);
        }
        return;
      }
      case Opcode::CallInd: {
        if (cfg_opts_.callEmulation) {
            emitEmulatedRa(orig_next);
            as.emit(makeJmpInd(in.rs1));
        } else {
            as.emit(in);
            result_.raPairs.emplace_back(as.here(), orig_next);
        }
        return;
      }
      case Opcode::CallIndMem: {
        if (cfg_opts_.callEmulation) {
            // Dyninst-10.2's x64 bug reproduced (§8.1): the pushed
            // return address shifts sp, so sp-relative operands read
            // the wrong slot.
            emitEmulatedRa(orig_next);
            as.emit(makeLoad(Reg::r12, in.rs1, in.imm));
            as.emit(makeJmpInd(Reg::r12));
        } else {
            as.emit(in);
            result_.raPairs.emplace_back(as.here(), orig_next);
        }
        return;
      }
      case Opcode::Throw: {
        if (cfg_opts_.callEmulation) {
            // Emulate the call into the throw runtime: materialize
            // the original throw address for the unwinder.
            if (arch_.hasLinkRegister) {
                emitMaterializeAddr(Reg::r13, in.addr);
            } else {
                emitMaterializeAddr(Reg::r13, in.addr);
                as.emit(makePush(Reg::r13));
            }
            as.emit(makeThrowRa());
            return;
        }
        // The unwinder's innermost frame pc is the throw site
        // itself; map it back like a return address so the FDE
        // lookup sees original coordinates (§6).
        result_.raPairs.emplace_back(as.here(), in.addr);
        as.emit(in);
        return;
      }
      case Opcode::Lea: {
        // An intra-function Lea of a block start is a jump-table
        // anchor: it must track the relocated code in jt/func-ptr
        // modes so anchor-relative clones stay consistent.
        if (cfg_opts_.mode != RewriteMode::dir &&
            in.target >= func.entry && in.target < func.end &&
            isRelocatedBlock(in.target)) {
            as.emitToLabel(makeLea(in.rd, 0), labelFor(in.target));
            return;
        }
        // The short-range ADR form cannot reach original space from
        // .instr; widen to the adrp/add pair (same absolute value).
        {
            std::vector<std::uint8_t> scratch;
            if (!arch_.codec->encode(in, as.here(), scratch)) {
                as.emit(makeAdrPage(in.rd, in.target));
                const Addr page = ((in.target + 0x8000) >> 16) << 16;
                as.emit(makeAddImm(
                    in.rd, static_cast<std::int64_t>(in.target) -
                               static_cast<std::int64_t>(page)));
                return;
            }
        }
        as.emit(in);
        return;
      }
      default:
        as.emit(in);
        return;
    }
}

void
Engine::emitBlock(Assembler &as, const Function &func,
                  const Block &block, Addr fallthrough_next)
{
    as.bind(labelFor(block.start));
    result_.blockMap[block.start] = as.here();

    // Instrumentation snippets.
    const bool is_entry = block.start == func.entry;
    if (is_entry && cfg_opts_.goRaTranslation &&
        (func.name == "runtime.findfunc" ||
         func.name == "runtime.pcvalue")) {
        const unsigned slot = arch_.hasLinkRegister ? go_arg_slot_lr
                                                    : go_arg_slot_x64;
        as.emit(makeCallRt(
            rtServiceImm(RtService::raXlatStackSlot, slot)));
    }
    if (is_entry && cfg_opts_.instrumentation.countFunctionEntries) {
        const std::uint32_t id = nextCounter_++;
        result_.entryCounters[func.entry] = id;
        as.emit(makeCallRt(rtServiceImm(RtService::count, id)));
    }
    if (cfg_opts_.instrumentation.instrumentsBlock(block.start)) {
        const std::uint32_t id = nextCounter_++;
        result_.blockCounters[block.start] = id;
        as.emit(makeCallRt(rtServiceImm(RtService::count, id)));
    }

    for (const auto &in : block.insns) {
        result_.insnMap[in.addr] = as.here();
        emitTranslated(as, func, in);
    }

    // Preserve fall-through semantics when the next emitted block is
    // not the layout successor (block reordering, function ends).
    const Instruction &last = block.last();
    const bool falls = !isControlFlow(last.op) ||
                       last.op == Opcode::JmpCond ||
                       isCall(last.op);
    if (falls) {
        const Addr ft = block.end;
        if (ft != fallthrough_next) {
            if (isRelocatedBlock(ft))
                as.emitToLabel(makeJmp(0), labelFor(ft));
            else
                as.emit(makeJmp(ft));
        }
    }
}

void
Engine::emitFunction(Assembler &as, const Function &func)
{
    std::vector<const Block *> order;
    order.reserve(func.blocks.size());
    for (const auto &[start, block] : func.blocks)
        order.push_back(&block);
    if (cfg_opts_.blockOrder == OrderPolicy::reversed) {
        // Keep the entry block first (callers land there), reverse
        // the rest.
        std::reverse(order.begin(), order.end());
        auto it = std::find_if(order.begin(), order.end(),
                               [&](const Block *b) {
                                   return b->start == func.entry;
                               });
        if (it != order.end()) {
            const Block *entry = *it;
            order.erase(it);
            order.insert(order.begin(), entry);
        }
    }

    for (std::size_t i = 0; i < order.size(); ++i) {
        const Addr next =
            i + 1 < order.size() ? order[i + 1]->start : invalid_addr;
        emitBlock(as, func, *order[i], next);
    }
}

void
Engine::fillClones()
{
    for (const auto &clone : result_.clones) {
        const JumpTable &jt = *clone.source;
        for (unsigned i = 0; i < jt.entryCount; ++i) {
            std::uint64_t value = 0;
            const Addr orig_target =
                i < jt.targets.size() ? jt.targets[i] : 0;
            auto relocated = result_.blockMap.find(orig_target);
            if (relocated != result_.blockMap.end()) {
                const Addr tnew = relocated->second;
                if (!jt.base) {
                    value = tnew;
                } else {
                    Addr base_new;
                    if (*jt.base == jt.tableAddr) {
                        base_new = clone.cloneAddr;
                    } else {
                        // Anchor-relative: the anchor moved with the
                        // code.
                        auto anchor =
                            result_.blockMap.find(*jt.base);
                        icp_assert(anchor != result_.blockMap.end(),
                                   "anchor 0x%llx not relocated",
                                   static_cast<unsigned long long>(
                                       *jt.base));
                        base_new = anchor->second;
                    }
                    const std::int64_t diff =
                        static_cast<std::int64_t>(tnew) -
                        static_cast<std::int64_t>(base_new);
                    icp_assert((diff &
                                ((1LL << jt.shift) - 1)) == 0,
                               "clone entry not aligned");
                    const std::int64_t entry = diff >> jt.shift;
                    icp_assert(
                        clone.entrySize == 8 ||
                            fitsSigned(entry, clone.entrySize * 8),
                        "clone entry does not fit");
                    value = static_cast<std::uint64_t>(entry);
                }
            }
            // Over-approximated garbage entries keep zero; they are
            // never dereferenced at runtime (§5.1, Failure 3).
            const Offset off =
                clone.cloneAddr - cfg_opts_.newRodataBase +
                std::uint64_t{i} * clone.entrySize;
            if (result_.newRodataBytes.size() <
                off + clone.entrySize) {
                result_.newRodataBytes.resize(off + clone.entrySize,
                                              0);
            }
            for (unsigned b = 0; b < clone.entrySize; ++b) {
                result_.newRodataBytes[off + b] =
                    static_cast<std::uint8_t>(value >> (8 * b));
            }
        }
    }
}

EngineResult
Engine::run()
{
    planClones();

    Assembler as(arch_, cfg_opts_.instrBase);
    as_ = &as;

    // Labels for every block of every instrumented function.
    std::vector<const Function *> funcs;
    for (const auto &[entry, func] : cfg_.functions) {
        if (!instrumented_.count(entry))
            continue;
        funcs.push_back(&func);
        for (const auto &[start, block] : func.blocks)
            blockLabels_[start] = as.newLabel();
    }
    if (cfg_opts_.functionOrder == OrderPolicy::reversed)
        std::reverse(funcs.begin(), funcs.end());

    for (const Function *func : funcs) {
        as.alignTo(std::max(cfg_opts_.functionAlign,
                            arch_.instrAlign));
        emitFunction(as, *func);
    }

    result_.instrBytes = as.finalize();
    fillClones();
    as_ = nullptr;
    return result_;
}

} // namespace

EngineResult
relocateFunctions(const CfgModule &cfg,
                  const std::set<Addr> &instrumented,
                  const EngineConfig &config)
{
    Engine engine(cfg, instrumented, config);
    return engine.run();
}

} // namespace icp
