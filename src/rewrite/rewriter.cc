#include "rewrite/rewriter.hh"

#include <algorithm>
#include <cstdio>
#include <functional>

#include <unistd.h>

#include "analysis/cache.hh"
#include "analysis/funcptr.hh"
#include "analysis/liveness.hh"
#include "isa/bytes.hh"
#include "binfmt/addr_map.hh"
#include "binfmt/stream_writer.hh"
#include "rewrite/engine.hh"
#include "rewrite/shard.hh"
#include "rewrite/trampoline.hh"
#include "support/logging.hh"
#include "support/stats.hh"
#include "support/thread_pool.hh"

namespace icp
{

const char *
rewriteModeName(RewriteMode mode)
{
    switch (mode) {
      case RewriteMode::dir: return "dir";
      case RewriteMode::jt: return "jt";
      case RewriteMode::funcPtr: return "func-ptr";
    }
    return "?";
}

const char *
injectDefectName(InjectDefect defect)
{
    switch (defect) {
      case InjectDefect::none: return "none";
      case InjectDefect::trampTarget: return "tramp-target";
      case InjectDefect::trampRange: return "tramp-range";
      case InjectDefect::trampChain: return "tramp-chain";
      case InjectDefect::liveScratch: return "live-scratch";
      case InjectDefect::tocScratch: return "toc-scratch";
      case InjectDefect::staleCloneEntry: return "stale-clone-entry";
      case InjectDefect::cloneBounds: return "clone-bounds";
      case InjectDefect::doublePatch: return "double-patch";
      case InjectDefect::raMapEntry: return "ra-map-entry";
      case InjectDefect::dropFde: return "drop-fde";
      case InjectDefect::funcPtrStale: return "func-ptr-stale";
      case InjectDefect::depMissing: return "dep-missing";
      case InjectDefect::depStale: return "dep-stale";
      case InjectDefect::depOverbroad: return "dep-overbroad";
    }
    return "?";
}

std::optional<InjectDefect>
parseInjectDefect(const std::string &name)
{
    for (unsigned v = 0;
         v <= static_cast<unsigned>(InjectDefect::depOverbroad); ++v) {
        const auto defect = static_cast<InjectDefect>(v);
        if (name == injectDefectName(defect))
            return defect;
    }
    return std::nullopt;
}

namespace
{

Addr
alignUp(Addr v, Addr align)
{
    return (v + align - 1) & ~(align - 1);
}

/** Relocated address of an original address, if relocated. */
using BlockLookup = std::function<std::optional<Addr>(Addr)>;

/** Mutable working copy of the output image under construction. */
class Rewriter
{
  public:
    Rewriter(const BinaryImage &input, const RewriteOptions &opts,
             const RewritePass &pass)
        : input_(input), opts_(opts), pass_(pass),
          arch_(input.archInfo())
    {
    }

    RewriteResult run();
    RewriteResult runSharded(SbfSink &sink);

  private:
    /** A .instr patch that must wait for the emission pass (the
     *  streaming path patches function bytes in flight instead of a
     *  materialized section). */
    struct InstrPatch
    {
        Addr at = 0;
        Addr newTarget = 0;
    };

    std::set<Addr> chooseInstrumented();
    std::set<Addr> cflBlocks(const Function &func) const;
    std::set<Addr> blocksReachingInstrumentation(
        const Function &func) const;
    void donateScratch(ScratchPool &pool);
    void recordDonation(Addr addr, std::uint64_t len);
    Addr funcEntryOf(Addr a) const;
    bool injectSiteAllowed(Addr func_entry) const;
    void fillManifest(const EngineResult &engine);
    void injectByteDefect();
    void installTrampolines(const EngineResult &engine);
    void trampolineBegin();
    void trampolineFunc(const Function &func,
                        const std::set<Addr> &cfl,
                        const LivenessResult *live,
                        const BlockLookup &lookup);
    void trampolineFinish();
    void accountTrampoline(const TrampolineRequest &req,
                           Addr func_entry,
                           const TrampolineOut &installed);
    void rewriteFuncPtrs(const BlockLookup &block_lookup,
                         const BlockLookup &insn_lookup,
                         std::vector<InstrPatch> *deferred);
    void patchCodeDef(const FuncPtrDef &def, Addr new_target,
                      const BlockLookup &insn_lookup,
                      std::vector<InstrPatch> *deferred);
    static void applyFuncPtrMutation(const BinaryImage &input,
                                     Instruction &in, Addr new_target);
    bool patchInstructionAt(std::vector<std::uint8_t> &bytes,
                            Addr section_base, Addr at,
                            const std::function<void(Instruction &)>
                                &mutate);
    void clobberOriginal(
        const std::vector<std::pair<Addr, Addr>> &func_ranges);
    void addCodeSections(const EngineResult &engine);
    void buildSections(std::uint64_t instr_size,
                       std::uint64_t rodata_size,
                       const std::vector<std::pair<Addr, Addr>>
                           &ra_pairs);

    const BinaryImage &input_;
    const RewriteOptions &opts_;
    const RewritePass &pass_;
    const ArchInfo &arch_;

    /** Built here, or borrowed from pass_.cfg (session reuse). In
     *  the sharded run it points at the current shard's CFG. */
    CfgModule ownCfg_;
    const CfgModule *cfg_ = nullptr;
    FuncPtrAnalysisResult funcPtrs_;
    std::set<Addr> instrumented_;

    RewriteResult result_;
    BinaryImage out_;

    Addr instrBase_ = 0;
    Addr newRodataBase_ = 0;

    std::vector<std::pair<Addr, Addr>> trapEntries_;

    /** Bytes a trampoline occupies (kept during clobbering). */
    std::vector<std::pair<Addr, Addr>> keepRanges_;

    // Trampoline-installation state, live between trampolineBegin()
    // and trampolineFinish() (the sharded coordinator interleaves
    // per-function installs with layout across shard boundaries).
    struct PendingTramp
    {
        TrampolineRequest req;
        Addr superEnd;
        Addr funcEntry;
    };
    std::unique_ptr<ScratchPool> pool_;
    std::unique_ptr<TrampolineWriter> writer_;
    std::vector<PendingTramp> pendingTramps_;
};

std::set<Addr>
Rewriter::chooseInstrumented()
{
    std::set<Addr> chosen;
    for (const auto &[entry, func] : cfg_->functions) {
        if (!func.instrumentable())
            continue;
        if (!opts_.onlyFunctions.empty() &&
            !opts_.onlyFunctions.count(func.name))
            continue;
        chosen.insert(entry);
    }
    return chosen;
}

std::set<Addr>
Rewriter::cflBlocks(const Function &func) const
{
    std::set<Addr> cfl;
    if (!opts_.trampolinePlacement) {
        // SRBI-style: every basic block gets a trampoline.
        for (const auto &[start, block] : func.blocks)
            cfl.insert(start);
        return cfl;
    }

    // Function entry blocks: always CFL — entries of instrumented
    // functions keep a trampoline so calls from uninstrumented code
    // (and unrewritten pointers) stay correct (§4.3).
    cfl.insert(func.entry);

    // Landing pads: the unwinder resumes at original addresses.
    for (Addr lp : func.landingPads) {
        if (func.blocks.count(lp))
            cfl.insert(lp);
    }

    // Jump-table targets: CFL only when tables are not cloned.
    if (opts_.mode == RewriteMode::dir) {
        for (Addr t : func.jumpTableTargets())
            cfl.insert(t);
    }

    // Call fall-through blocks: CFL under call emulation only;
    // runtime RA translation removes them (§6).
    if (!opts_.raTranslation) {
        for (const auto &[start, block] : func.blocks) {
            for (const auto &edge : block.succs) {
                if (edge.kind == EdgeKind::callFallthrough &&
                    func.blocks.count(edge.target)) {
                    cfl.insert(edge.target);
                }
            }
        }
    }

    // The §4.2 extension: drop trampolines at CFL blocks that
    // cannot reach any instrumented block — control flow landing
    // there may keep running original code (which is why this is
    // incompatible with clobbering).
    if (opts_.reachabilityPruning) {
        const std::set<Addr> keep =
            blocksReachingInstrumentation(func);
        for (auto it = cfl.begin(); it != cfl.end();) {
            if (keep.count(*it))
                ++it;
            else
                it = cfl.erase(it);
        }
    }
    return cfl;
}

std::set<Addr>
Rewriter::blocksReachingInstrumentation(const Function &func) const
{
    // Instrumentation sites in this function. Calls to other
    // instrumented functions are covered by the callees' own entry
    // trampolines, so local reachability suffices.
    std::set<Addr> inst;
    if (opts_.instrumentation.countFunctionEntries)
        inst.insert(func.entry);
    if (opts_.raTranslation && input_.features.isGo &&
        (func.name == "runtime.findfunc" ||
         func.name == "runtime.pcvalue")) {
        inst.insert(func.entry);
    }
    for (const auto &[start, block] : func.blocks) {
        if (opts_.instrumentation.instrumentsBlock(start))
            inst.insert(start);
    }

    // Backward reachability over intra-procedural edges.
    std::map<Addr, std::vector<Addr>> preds;
    for (const auto &[start, block] : func.blocks) {
        for (const auto &edge : block.succs)
            preds[edge.target].push_back(start);
    }
    std::set<Addr> keep = inst;
    std::vector<Addr> work(inst.begin(), inst.end());
    while (!work.empty()) {
        const Addr cur = work.back();
        work.pop_back();
        auto it = preds.find(cur);
        if (it == preds.end())
            continue;
        for (Addr p : it->second) {
            if (keep.insert(p).second)
                work.push_back(p);
        }
    }
    return keep;
}

void
Rewriter::recordDonation(Addr addr, std::uint64_t len)
{
    result_.manifest.scratchRanges.emplace_back(addr, len);
}

void
Rewriter::donateScratch(ScratchPool &pool)
{
    auto donate = [&](Addr addr, std::uint64_t len) {
        pool.donate(addr, len, arch_.instrAlign);
        recordDonation(addr, len);
    };

    // Source 1: inter-function nop padding in .text.
    const auto funcs = input_.functionSymbols();
    const Section *text = input_.findSection(SectionKind::text);
    if (text) {
        Addr cursor = text->addr;
        for (const Symbol *sym : funcs) {
            if (sym->addr > cursor)
                donate(cursor, sym->addr - cursor);
            cursor = std::max(cursor, sym->addr + sym->size);
        }
        if (text->end() > cursor)
            donate(cursor, text->end() - cursor);
    }

    // Source 3: the retired dynamic-linking sections (§3). (Source
    // 2, unused scratch-block bytes, is consumed in place through
    // trampoline superblock extension.)
    for (const auto kind : {SectionKind::dynsym, SectionKind::dynstr,
                            SectionKind::relaDyn}) {
        if (const Section *s = input_.findSection(kind))
            donate(s->addr, s->memSize);
    }
}

void
Rewriter::accountTrampoline(const TrampolineRequest &req,
                            Addr func_entry,
                            const TrampolineOut &installed)
{
    result_.stats.trampolines++;
    switch (installed.kind) {
      case TrampolineKind::direct:
        result_.stats.directTramps++;
        break;
      case TrampolineKind::longForm:
      case TrampolineKind::longFormSpill:
        result_.stats.longTramps++;
        break;
      case TrampolineKind::multiHop:
        result_.stats.multiHopTramps++;
        break;
      case TrampolineKind::trap:
        result_.stats.trapTramps++;
        break;
    }
    TrampolinePatch patch;
    patch.site = req.at;
    patch.funcEntry = func_entry;
    patch.target = req.target;
    patch.kind = installed.kind;
    patch.scratchReg = req.scratchReg;
    patch.space = req.space;
    for (const auto &write : installed.writes) {
        const bool ok = out_.writeBytes(write.at, write.bytes);
        icp_assert(ok, "trampoline write failed at 0x%llx",
                   static_cast<unsigned long long>(write.at));
        keepRanges_.emplace_back(write.at,
                                 write.at + write.bytes.size());
        patch.writes.emplace_back(write.at, write.bytes.size());
    }
    result_.manifest.trampolines.push_back(std::move(patch));
    for (const auto &entry2 : installed.trapEntries)
        trapEntries_.push_back(entry2);
}

void
Rewriter::trampolineBegin()
{
    pool_ = std::make_unique<ScratchPool>();
    donateScratch(*pool_);
    writer_ = std::make_unique<TrampolineWriter>(
        arch_, input_.tocBase, *pool_, opts_.multiHop);
}

void
Rewriter::installTrampolines(const EngineResult &engine)
{
    trampolineBegin();

    // Per-function trampoline inputs — CFL block sets and (on the
    // fixed ISAs) liveness — are independent across functions:
    // precompute them in parallel, with liveness memoized in the
    // analysis cache under the function's CFG key. The serial
    // install below then only does the order-sensitive pool work.
    struct FuncPre
    {
        const Function *func = nullptr;
        std::set<Addr> cfl;
        std::shared_ptr<const LivenessResult> live;
    };
    std::vector<const Function *> funcs;
    for (const auto &[entry, func] : cfg_->functions) {
        if (instrumented_.count(entry))
            funcs.push_back(&func);
    }
    std::vector<FuncPre> pre(funcs.size());
    {
        StageTimer timer(Stage::liveness);
        ThreadPool::shared().parallelFor(
            funcs.size(), effectiveThreads(opts_.threads),
            [&](std::size_t i) {
                const Function &func = *funcs[i];
                pre[i].func = &func;
                pre[i].cfl = cflBlocks(func);
                if (!arch_.fixedLength)
                    return;
                const bool cached =
                    opts_.useAnalysisCache && func.cacheKey != 0;
                if (cached) {
                    if (auto hit =
                            AnalysisCache::global().findLiveness(
                                func.cacheKey, func.entry)) {
                        pre[i].live = hit;
                        return;
                    }
                }
                pre[i].live = std::make_shared<LivenessResult>(
                    computeLiveness(func, arch_));
                if (cached) {
                    AnalysisCache::global().storeLiveness(
                        func.cacheKey, input_.arch, func.entry,
                        *pre[i].live);
                }
            });
    }

    StageTimer timer(Stage::trampoline);

    const BlockLookup lookup = [&](Addr a) -> std::optional<Addr> {
        auto it = engine.blockMap.find(a);
        if (it == engine.blockMap.end())
            return std::nullopt;
        return it->second;
    };
    for (const FuncPre &p : pre)
        trampolineFunc(*p.func, p.cfl, p.live.get(), lookup);
    trampolineFinish();
}

/**
 * Phase 1 for one function: in-place installs; unused superblock
 * bytes (source 2 of §7's scratch space) are donated to the pool for
 * phase 2. @p lookup resolves an original block start to its
 * relocated address; @p live may be null on variable-length ISAs.
 */
void
Rewriter::trampolineFunc(const Function &func,
                         const std::set<Addr> &cfl,
                         const LivenessResult *live,
                         const BlockLookup &lookup)
{
    result_.stats.cflBlocks += cfl.size();
    result_.stats.totalBlocks += func.blocks.size();

    // Repair demotion: every trampoline in this function becomes
    // a trap — the always-sound §4.3 fallback.
    const bool force_trap =
        opts_.forceTrapFunctions.count(func.name) > 0;

    // Embedded jump-table data must never be overwritten.
    std::vector<std::pair<Addr, Addr>> protect;
    for (const auto &jt : func.jumpTables) {
        if (jt.embeddedInCode) {
            protect.emplace_back(
                jt.tableAddr,
                jt.tableAddr +
                    std::uint64_t{jt.entryCount} * jt.entrySize);
            keepRanges_.emplace_back(protect.back());
            result_.manifest.protectedRanges.push_back(
                protect.back());
        }
    }

    for (Addr start : cfl) {
        auto bit = func.blocks.find(start);
        if (bit == func.blocks.end())
            continue;
        // Trampoline superblock: extend across address-adjacent
        // scratch (non-CFL) blocks (§4.1).
        Addr se = bit->second.end;
        if (opts_.trampolinePlacement) {
            auto next = std::next(bit);
            while (next != func.blocks.end() &&
                   next->first == se && !cfl.count(next->first)) {
                se = next->second.end;
                ++next;
            }
        }
        // Never extend over embedded table data.
        for (const auto &[lo, hi] : protect) {
            if (lo >= start && lo < se)
                se = lo;
        }

        TrampolineRequest req;
        req.at = start;
        req.space = se - start;
        const std::optional<Addr> target = lookup(start);
        icp_assert(target.has_value(),
                   "CFL block 0x%llx not relocated",
                   static_cast<unsigned long long>(start));
        req.target = *target;
        req.scratchReg = arch_.fixedLength
            ? live->deadRegAt(start)
            : Reg::none;

        if (force_trap) {
            const TrampolineOut trapped = writer_->installTrap(req);
            const std::uint64_t used =
                trapped.writes.empty()
                    ? 0
                    : trapped.writes[0].bytes.size();
            accountTrampoline(req, func.entry, trapped);
            if (opts_.trampolinePlacement && start + used < se) {
                pool_->donate(start + used, se - (start + used),
                              arch_.instrAlign);
                recordDonation(start + used, se - (start + used));
            }
            continue;
        }

        // Fault injection (register defects): force a long form
        // whose scratch register the verifier must reject. Only
        // the first applicable site is corrupted.
        std::optional<TrampolineOut> in_place;
        const bool want_reg_defect = opts_.lint &&
            (opts_.injectDefect == InjectDefect::liveScratch ||
             opts_.injectDefect == InjectDefect::tocScratch) &&
            result_.manifest.injectedRule.empty() &&
            (opts_.injectOnlyFunction.empty() ||
             func.name == opts_.injectOnlyFunction);
        if (want_reg_defect && arch_.fixedLength &&
            req.space >= writer_->longFormLen()) {
            Reg bad = Reg::none;
            if (opts_.injectDefect == InjectDefect::tocScratch) {
                if (arch_.hasToc)
                    bad = Reg::toc;
            } else {
                const RegSet live_set = live->liveAtBlockStart(start);
                for (unsigned r = 0; r < num_gp_regs; ++r) {
                    if (live_set.contains(static_cast<Reg>(r))) {
                        bad = static_cast<Reg>(r);
                        break;
                    }
                }
            }
            if (bad != Reg::none) {
                req.scratchReg = bad;
                in_place = writer_->installForcedLongForm(req);
                result_.manifest.injectedRule =
                    opts_.injectDefect == InjectDefect::tocScratch
                        ? "toc-preserved"
                        : "tramp-scratch-live";
            }
        }
        if (!in_place)
            in_place = writer_->installInPlace(req);

        if (in_place) {
            accountTrampoline(req, func.entry, *in_place);
            std::uint64_t used = 0;
            for (const auto &write : in_place->writes) {
                if (write.at == start)
                    used = write.bytes.size();
            }
            if (opts_.trampolinePlacement && start + used < se) {
                pool_->donate(start + used, se - (start + used),
                              arch_.instrAlign);
                recordDonation(start + used, se - (start + used));
            }
        } else {
            pendingTramps_.push_back({req, se, func.entry});
        }
    }
}

void
Rewriter::trampolineFinish()
{
    // Donate the tails of still-pending superblocks (the first-hop
    // branch needs only the head), then resolve them.
    const std::uint64_t head = arch_.fixedLength
        ? arch_.directJmpLen
        : arch_.shortJmpLen;
    if (opts_.trampolinePlacement) {
        for (const auto &p : pendingTramps_) {
            if (p.req.at + head < p.superEnd) {
                pool_->donate(p.req.at + head,
                              p.superEnd - (p.req.at + head),
                              arch_.instrAlign);
                recordDonation(p.req.at + head,
                               p.superEnd - (p.req.at + head));
            }
        }
    }
    for (const auto &p : pendingTramps_) {
        accountTrampoline(p.req, p.funcEntry,
                          writer_->installWithFallback(p.req));
    }
    pendingTramps_.clear();
    writer_.reset();
    pool_.reset();
}

bool
Rewriter::patchInstructionAt(std::vector<std::uint8_t> &bytes,
                             Addr section_base, Addr at,
                             const std::function<void(Instruction &)>
                                 &mutate)
{
    const Offset off = at - section_base;
    if (off >= bytes.size())
        return false;
    Instruction in;
    if (!arch_.codec->decode(bytes.data() + off, bytes.size() - off,
                             at, in)) {
        return false;
    }
    const unsigned old_len = in.length;
    mutate(in);
    std::vector<std::uint8_t> enc;
    if (!arch_.codec->encode(in, at, enc) || enc.size() != old_len)
        return false;
    std::copy(enc.begin(), enc.end(),
              bytes.begin() + static_cast<std::ptrdiff_t>(off));
    return true;
}

void
Rewriter::applyFuncPtrMutation(const BinaryImage &input,
                               Instruction &in, Addr new_target)
{
    const ArchInfo &arch = input.archInfo();
    switch (in.op) {
      case Opcode::MovImm:
        if (arch.fixedLength) {
            in.imm = static_cast<std::int64_t>(
                (new_target >> in.movShift) & 0xffff);
        } else {
            in.imm = static_cast<std::int64_t>(new_target);
        }
        break;
      case Opcode::Lea:
      case Opcode::AdrPage:
        in.target = new_target;
        break;
      case Opcode::AddisToc: {
        const std::int64_t off =
            static_cast<std::int64_t>(new_target) -
            static_cast<std::int64_t>(input.tocBase);
        in.imm = (off + 0x8000) >> 16;
        break;
      }
      case Opcode::AddImm: {
        std::int64_t lo;
        if (arch.hasToc) {
            const std::int64_t off =
                static_cast<std::int64_t>(new_target) -
                static_cast<std::int64_t>(input.tocBase);
            lo = signExtend(static_cast<std::uint64_t>(off), 16);
        } else {
            const Addr page = ((new_target + 0x8000) >> 16) << 16;
            lo = static_cast<std::int64_t>(new_target) -
                 static_cast<std::int64_t>(page);
        }
        in.imm = lo;
        break;
      }
      default:
        break;
    }
}

void
Rewriter::patchCodeDef(const FuncPtrDef &def, Addr new_target,
                       const BlockLookup &insn_lookup,
                       std::vector<InstrPatch> *deferred)
{
    // Decide where the defining instructions live now: inside
    // relocated code (.instr) for instrumented functions, in the
    // original .text otherwise. With @p deferred set, .instr patches
    // are queued for the emission pass instead of applied to the
    // (not yet materialized) section payload.
    Section *instr = out_.findSection(SectionKind::instr);
    Section *text = out_.findSection(SectionKind::text);
    icp_assert(instr && text, "sections missing");

    for (Addr orig : def.defAddrs) {
        Addr at = orig;
        Section *sec = text;
        if (const std::optional<Addr> relocated = insn_lookup(orig)) {
            at = *relocated;
            sec = instr;
            if (deferred) {
                deferred->push_back({at, new_target});
                continue;
            }
        }
        const bool ok = patchInstructionAt(
            sec->bytes, sec->addr, at, [&](Instruction &in) {
                applyFuncPtrMutation(input_, in, new_target);
            });
        icp_assert(ok, "func-ptr code patch failed at 0x%llx",
                   static_cast<unsigned long long>(at));
    }
}

void
Rewriter::rewriteFuncPtrs(const BlockLookup &block_lookup,
                          const BlockLookup &insn_lookup,
                          std::vector<InstrPatch> *deferred)
{
    for (const auto &def : funcPtrs_.defs) {
        // Displaced pointers (Listing 1's entry+1) land inside the
        // entry trampoline and are therefore rewritten in every
        // mode; exact entry pointers only in func-ptr mode.
        if (opts_.mode != RewriteMode::funcPtr && def.delta == 0)
            continue;
        Addr new_value;
        if (def.delta == 0) {
            // Point at the relocated block start so entry
            // instrumentation still runs.
            const std::optional<Addr> relocated =
                block_lookup(def.funcEntry);
            if (!relocated)
                continue; // not relocated; pointer stays valid
            new_value = *relocated;
        } else {
            const Addr use_point = def.funcEntry +
                                   static_cast<Addr>(def.delta);
            const std::optional<Addr> relocated =
                insn_lookup(use_point);
            if (!relocated)
                continue;
            new_value = *relocated - static_cast<Addr>(def.delta);
        }

        FuncPtrPatch patch;
        patch.site = def.site;
        patch.funcEntry = def.funcEntry;
        patch.delta = def.delta;
        patch.newValue = new_value;

        if (def.kind == FuncPtrDef::Kind::dataCell) {
            // Update the relocation addend and the initialized
            // bytes.
            for (auto &rel : out_.relocs) {
                if (rel.site == def.site) {
                    rel.addend = static_cast<std::int64_t>(new_value);
                }
            }
            std::vector<std::uint8_t> raw;
            for (unsigned b = 0; b < 8; ++b)
                raw.push_back(
                    static_cast<std::uint8_t>(new_value >> (8 * b)));
            out_.writeBytes(def.site, raw);
            result_.stats.rewrittenFuncPtrs++;
            patch.kind = FuncPtrPatch::Kind::dataCell;
        } else {
            patchCodeDef(def, new_value, insn_lookup, deferred);
            result_.stats.rewrittenFuncPtrs++;
            patch.kind = FuncPtrPatch::Kind::codeDef;
        }
        result_.manifest.funcPtrs.push_back(patch);
    }
}

void
Rewriter::clobberOriginal(
    const std::vector<std::pair<Addr, Addr>> &func_ranges)
{
    Section *text = out_.findSection(SectionKind::text);
    icp_assert(text, "no .text");
    std::sort(keepRanges_.begin(), keepRanges_.end());

    auto isKept = [&](Addr a) {
        auto it = std::upper_bound(
            keepRanges_.begin(), keepRanges_.end(),
            std::make_pair(a, ~Addr{0}));
        if (it == keepRanges_.begin())
            return false;
        --it;
        return a >= it->first && a < it->second;
    };

    // Illegal filler: 0x00 never decodes.
    for (const auto &[entry, end] : func_ranges) {
        for (Addr a = entry; a < end; ++a) {
            if (isKept(a))
                continue;
            const Offset off = a - text->addr;
            if (off < text->bytes.size())
                text->bytes[off] = 0x00;
        }
    }
}

void
Rewriter::addCodeSections(const EngineResult &engine)
{
    Section instr;
    instr.name = ".instr";
    instr.kind = SectionKind::instr;
    instr.addr = instrBase_;
    instr.bytes = engine.instrBytes;
    instr.memSize = instr.bytes.size();
    instr.executable = true;
    out_.addSection(std::move(instr));

    if (!engine.newRodataBytes.empty()) {
        Section ro;
        ro.name = ".newrodata";
        ro.kind = SectionKind::newRodata;
        ro.addr = newRodataBase_;
        ro.bytes = engine.newRodataBytes;
        ro.memSize = ro.bytes.size();
        out_.addSection(std::move(ro));
    }
}

void
Rewriter::buildSections(std::uint64_t instr_size,
                        std::uint64_t rodata_size,
                        const std::vector<std::pair<Addr, Addr>>
                            &ra_pairs)
{
    Addr cursor = alignUp(std::max(newRodataBase_ + rodata_size,
                                   instrBase_ + instr_size),
                          4096);

    // .ra_map
    if (opts_.raTranslation) {
        AddrPairMap ra_map(ra_pairs);
        Section s;
        s.name = ".ra_map";
        s.kind = SectionKind::raMap;
        s.addr = cursor;
        s.bytes = ra_map.serialize();
        s.memSize = s.bytes.size();
        cursor = alignUp(cursor + s.memSize, 4096);
        out_.addSection(std::move(s));
        result_.stats.raMapEntries = ra_map.size();
    }

    // .trap_map
    {
        AddrPairMap trap_map(trapEntries_);
        Section s;
        s.name = ".trap_map";
        s.kind = SectionKind::trapMap;
        s.addr = cursor;
        s.bytes = trap_map.serialize();
        s.memSize = s.bytes.size();
        cursor = alignUp(cursor + s.memSize, 4096);
        out_.addSection(std::move(s));
    }

    // Move the dynamic-linking sections; retire the old copies as
    // executable scratch (they already hold multi-hop trampolines).
    for (const auto kind : {SectionKind::dynsym, SectionKind::dynstr,
                            SectionKind::relaDyn}) {
        Section *old_sec = out_.findSection(kind);
        if (!old_sec)
            continue;
        Section moved = *old_sec;
        moved.addr = cursor;
        // Extra room for new dynamic symbols/strings/relocations —
        // what makes calls into external instrumentation libraries
        // linkable (§3).
        moved.memSize += 256;
        cursor = alignUp(cursor + moved.memSize, 16);
        old_sec->name += ".old";
        old_sec->kind = SectionKind::other;
        old_sec->executable = true;
        out_.addSection(std::move(moved));
    }
}

Addr
Rewriter::funcEntryOf(Addr a) const
{
    auto it = cfg_->functions.upper_bound(a);
    if (it == cfg_->functions.begin())
        return 0;
    --it;
    return (a >= it->second.entry && a < it->second.end) ? it->first
                                                         : 0;
}

bool
Rewriter::injectSiteAllowed(Addr func_entry) const
{
    if (opts_.injectOnlyFunction.empty())
        return true;
    auto it = cfg_->functions.find(func_entry);
    return it != cfg_->functions.end() &&
           it->second.name == opts_.injectOnlyFunction;
}

void
Rewriter::fillManifest(const EngineResult &engine)
{
    RewriteManifest &m = result_.manifest;
    m.populated = true;
    m.blockMap = engine.blockMap;
    m.insnMap = engine.insnMap;
    m.raPairs = engine.raPairs;
    m.funcSpans = engine.funcSpans;
    m.instrumented = instrumented_;
    for (const auto &[entry, func] : cfg_->functions)
        m.dataDeps[entry] = func.dataDeps;
    for (const auto &clone : engine.clones) {
        const JumpTable &jt = clone.table;
        JumpTableClonePatch p;
        p.jumpAddr = jt.jumpAddr;
        p.funcEntry = funcEntryOf(jt.jumpAddr);
        p.cloneAddr = clone.cloneAddr;
        p.entrySize = clone.entrySize;
        p.entryCount = jt.entryCount;
        p.shift = jt.shift;
        p.widened = clone.widened;
        p.origBase = jt.base;
        p.origTableAddr = jt.tableAddr;
        p.origTargets = jt.targets;
        m.clones.push_back(std::move(p));
    }
}

/**
 * Plant the post-emission defects of InjectDefect: each corrupts
 * exactly one emitted artifact after the rewrite completed, leaving
 * the manifest describing the *intended* output, so exactly one
 * verifier rule must fire. Register defects (liveScratch /
 * tocScratch) are planted during trampoline installation instead.
 */
void
Rewriter::injectByteDefect()
{
    RewriteManifest &m = result_.manifest;
    if (!m.injectedRule.empty())
        return; // a register defect was already planted

    switch (opts_.injectDefect) {
      case InjectDefect::trampTarget: {
        // Retarget a direct trampoline at an unmapped address that
        // the branch can still encode.
        const Addr bogus = out_.highWaterMark(4096) + 0x10000;
        for (const auto &p : m.trampolines) {
            if (p.kind != TrampolineKind::direct ||
                !injectSiteAllowed(p.funcEntry))
                continue;
            std::vector<std::uint8_t> enc;
            if (!arch_.codec->encode(makeJmp(bogus), p.site, enc))
                continue;
            if (p.writes.empty() || enc.size() != p.writes[0].second)
                continue;
            icp_assert(out_.writeBytes(p.site, enc),
                       "defect write failed");
            m.injectedRule = "tramp-target";
            return;
        }
        return;
      }

      case InjectDefect::trampRange: {
        // Encode a branch past the ISA's enforced reach. Only the
        // ppc-like ISA has headroom between the enforced ±32 MB and
        // the 26-bit displacement field (±128 MB in 4-byte words).
        if (!arch_.fixedLength)
            return;
        for (const auto &p : m.trampolines) {
            if (p.kind != TrampolineKind::direct ||
                !injectSiteAllowed(p.funcEntry))
                continue;
            const Addr far = p.site + 2 *
                static_cast<Addr>(arch_.directJmpRange);
            std::vector<std::uint8_t> enc;
            if (!arch_.codec->encodeUnchecked(makeJmp(far), p.site,
                                              enc)) {
                continue;
            }
            icp_assert(out_.writeBytes(p.site, enc),
                       "defect write failed");
            m.injectedRule = "tramp-range";
            return;
        }
        return;
      }

      case InjectDefect::trampChain: {
        // A trampoline branching to its own site: the chain walker
        // must detect the cycle.
        for (const auto &p : m.trampolines) {
            if (p.kind != TrampolineKind::direct ||
                !injectSiteAllowed(p.funcEntry))
                continue;
            std::vector<std::uint8_t> enc;
            if (!arch_.codec->encode(makeJmp(p.site), p.site, enc))
                continue;
            if (p.writes.empty() || enc.size() != p.writes[0].second)
                continue;
            icp_assert(out_.writeBytes(p.site, enc),
                       "defect write failed");
            m.injectedRule = "tramp-chain";
            return;
        }
        return;
      }

      case InjectDefect::staleCloneEntry: {
        // Zero one clone entry whose correct value is nonzero —
        // the "skipped fixup" of §5.1.
        for (const auto &c : m.clones) {
            if (!injectSiteAllowed(c.funcEntry))
                continue;
            for (unsigned i = 0; i < c.entryCount; ++i) {
                const Addr orig =
                    i < c.origTargets.size() ? c.origTargets[i] : 0;
                if (!m.blockMap.count(orig))
                    continue;
                const Addr at =
                    c.cloneAddr + std::uint64_t{i} * c.entrySize;
                const auto cur = out_.readValue(at, c.entrySize);
                if (!cur || *cur == 0)
                    continue;
                out_.writeBytes(
                    at, std::vector<std::uint8_t>(c.entrySize, 0));
                m.injectedRule = "jt-clone-target";
                return;
            }
        }
        return;
      }

      case InjectDefect::cloneBounds: {
        // Shrink .newrodata so a clone's last entry sticks out.
        Section *ro = out_.findSection(SectionKind::newRodata);
        if (!ro || m.clones.empty())
            return;
        const JumpTableClonePatch *last = nullptr;
        for (const auto &c : m.clones) {
            if (!last || c.cloneAddr > last->cloneAddr)
                last = &c;
        }
        const Addr end = last->cloneAddr +
            std::uint64_t{last->entryCount} * last->entrySize;
        if (end <= ro->addr + 1)
            return;
        ro->memSize = end - 1 - ro->addr;
        if (ro->bytes.size() > ro->memSize)
            ro->bytes.resize(ro->memSize);
        m.injectedRule = "jt-clone-bounds";
        return;
      }

      case InjectDefect::doublePatch: {
        // Duplicate one patch record: two installs claiming the
        // same byte extent.
        for (const auto &p : m.trampolines) {
            if (!injectSiteAllowed(p.funcEntry))
                continue;
            m.trampolines.push_back(p);
            m.injectedRule = "patch-overlap";
            return;
        }
        return;
      }

      case InjectDefect::raMapEntry: {
        Section *s = out_.findSection(SectionKind::raMap);
        if (!s || s->bytes.empty())
            return;
        AddrPairMap parsed = AddrPairMap::parse(s->bytes);
        if (parsed.empty())
            return;
        auto pairs = parsed.pairs();
        pairs[0].second += 4;
        s->bytes = AddrPairMap(pairs).serialize();
        s->memSize = s->bytes.size();
        m.injectedRule = "addr-map-round-trip";
        return;
      }

      case InjectDefect::dropFde: {
        auto fdes = out_.fdeRecords();
        for (auto it = fdes.begin(); it != fdes.end(); ++it) {
            if (!m.instrumented.count(it->start) ||
                !injectSiteAllowed(it->start))
                continue;
            fdes.erase(it);
            out_.setFdeRecords(fdes);
            m.injectedRule = "eh-frame-cover";
            return;
        }
        return;
      }

      case InjectDefect::funcPtrStale: {
        // Restore a rewritten pointer cell (bytes and relocation)
        // to its original value.
        for (const auto &p : m.funcPtrs) {
            if (p.kind != FuncPtrPatch::Kind::dataCell ||
                !injectSiteAllowed(p.funcEntry))
                continue;
            const auto orig = input_.readValue(p.site, 8);
            if (!orig)
                continue;
            std::vector<std::uint8_t> raw;
            for (unsigned b = 0; b < 8; ++b)
                raw.push_back(
                    static_cast<std::uint8_t>(*orig >> (8 * b)));
            out_.writeBytes(p.site, raw);
            for (const auto &in_rel : input_.relocs) {
                if (in_rel.site != p.site)
                    continue;
                for (auto &rel : out_.relocs) {
                    if (rel.site == p.site)
                        rel.addend = in_rel.addend;
                }
            }
            m.injectedRule = "func-ptr-target";
            return;
        }
        return;
      }

      case InjectDefect::depMissing: {
        // Drop one recorded read-set range: the audit's expected
        // recomputation finds bytes the owner reads but never
        // recorded.
        for (auto &[entry, deps] : m.dataDeps) {
            if (deps.empty() || !injectSiteAllowed(entry))
                continue;
            auto ranges = deps.ranges();
            ranges.pop_back();
            deps.setRanges(std::move(ranges));
            m.injectedRule = "datadep-missing";
            return;
        }
        return;
      }

      case InjectDefect::depStale: {
        // Flip one recorded range hash: the range no longer hashes
        // clean against the image it claims to describe.
        for (auto &[entry, deps] : m.dataDeps) {
            if (deps.empty() || !injectSiteAllowed(entry))
                continue;
            auto ranges = deps.ranges();
            ranges.back().hash ^= 1;
            deps.setRanges(std::move(ranges));
            m.injectedRule = "datadep-stale";
            return;
        }
        return;
      }

      case InjectDefect::depOverbroad: {
        // Append a large range the slice never reads, with a
        // *correct* content hash (re-finalized against the input),
        // so only the overbroad audit fires — not stale.
        const Section *blob = nullptr;
        for (const Section &sec : input_.sections) {
            if (!sec.loadable || sec.executable ||
                sec.bytes.empty())
                continue;
            if (!blob || sec.memSize > blob->memSize)
                blob = &sec;
        }
        if (!blob)
            return;
        for (auto &[entry, deps] : m.dataDeps) {
            if (deps.empty() || !injectSiteAllowed(entry))
                continue;
            const std::uint64_t before = deps.totalBytes();
            DataDeps widened;
            for (const DepRange &r : deps.ranges())
                widened.add(r.lo, r.hi);
            widened.add(blob->addr, blob->addr + blob->memSize);
            widened.finalize(input_);
            // Below the audit threshold the defect would go
            // unflagged; keep looking for a smaller owner.
            const std::uint64_t extra =
                widened.totalBytes() - before;
            if (extra <= std::max<std::uint64_t>(64, before))
                continue;
            deps = std::move(widened);
            m.injectedRule = "datadep-overbroad";
            return;
        }
        return;
      }

      case InjectDefect::none:
      case InjectDefect::liveScratch:
      case InjectDefect::tocScratch:
        return;
    }
}

RewriteResult
Rewriter::run()
{
    if (opts_.reachabilityPruning && opts_.clobberOriginal) {
        result_.failReason = "reachability pruning lets original "
                             "code execute; it cannot be combined "
                             "with clobbering";
        return result_;
    }
    if (pass_.cfg) {
        // Session reuse: the caller's analysis artifacts are
        // authoritative; skip CFG construction entirely.
        cfg_ = pass_.cfg;
    } else {
        AnalysisOptions analysis = opts_.analysis;
        analysis.threads = opts_.threads;
        analysis.useCache = opts_.useAnalysisCache;
        ownCfg_ = buildCfg(input_, analysis);
        cfg_ = &ownCfg_;
    }
    // Function-pointer analysis runs in every mode: even dir/jt
    // need the forward-sliced displaced pointers (§5.2).
    {
        StageTimer timer(Stage::funcPtr);
        funcPtrs_ = analyzeFuncPtrs(*cfg_);
    }

    instrumented_ = chooseInstrumented();
    result_.stats.totalFunctions = cfg_->totalFunctions();
    result_.stats.instrumentableFunctions =
        cfg_->instrumentableFunctions();
    result_.stats.instrumentedFunctions =
        static_cast<unsigned>(instrumented_.size());
    result_.stats.originalLoadedSize = input_.loadedSize();

    out_ = input_;

    instrBase_ = input_.highWaterMark(4096);
    // Reserve a generous window for .instr; clones follow.
    EngineConfig config;
    config.mode = opts_.mode;
    config.callEmulation = !opts_.raTranslation;
    config.instrumentation = opts_.instrumentation;
    config.functionOrder = opts_.functionOrder;
    config.blockOrder = opts_.blockOrder;
    config.instrBase = instrBase_;
    config.goRaTranslation =
        opts_.raTranslation && input_.features.isGo;
    config.threads = opts_.threads;

    // Selective re-rewrite: hand the engine the previous pass's
    // layout and bytes so only pass_.dirtyFunctions re-emit.
    if (pass_.previous && pass_.previous->ok &&
        pass_.previous->manifest.populated) {
        const Section *prev_instr =
            pass_.previous->image.findSection(SectionKind::instr);
        if (prev_instr) {
            config.reuse.manifest = &pass_.previous->manifest;
            config.reuse.instrBytes = &prev_instr->bytes;
            config.reuse.dirty = &pass_.dirtyFunctions;
        }
    }

    // Estimate .instr extent to place .newrodata after it: snippets
    // and veneers expand code; 4x the original text is a safe bound.
    const Section *text = input_.findSection(SectionKind::text);
    icp_assert(text, "input has no .text");
    newRodataBase_ =
        alignUp(instrBase_ + text->memSize * 4 + 0x10000, 4096);
    config.newRodataBase = newRodataBase_;

    EngineResult engine =
        relocateFunctions(*cfg_, instrumented_, config);
    result_.stats.relocEmittedFunctions = engine.emittedFunctions;
    result_.stats.relocReusedFunctions = engine.reusedFunctions;
    icp_assert(instrBase_ + engine.instrBytes.size() <= newRodataBase_,
               ".instr overflowed its window");

    addCodeSections(engine);
    installTrampolines(engine);
    const BlockLookup block_lookup =
        [&](Addr a) -> std::optional<Addr> {
        auto it = engine.blockMap.find(a);
        if (it == engine.blockMap.end())
            return std::nullopt;
        return it->second;
    };
    const BlockLookup insn_lookup =
        [&](Addr a) -> std::optional<Addr> {
        auto it = engine.insnMap.find(a);
        if (it == engine.insnMap.end())
            return std::nullopt;
        return it->second;
    };
    rewriteFuncPtrs(block_lookup, insn_lookup, nullptr);
    if (opts_.clobberOriginal) {
        std::vector<std::pair<Addr, Addr>> ranges;
        for (const auto &[entry, func] : cfg_->functions) {
            if (instrumented_.count(entry))
                ranges.emplace_back(func.entry, func.end);
        }
        clobberOriginal(ranges);
    }

    {
        StageTimer timer(Stage::output);
        buildSections(engine.instrBytes.size(),
                      engine.newRodataBytes.size(), engine.raPairs);
    }
    if (opts_.lint) {
        fillManifest(engine);
        if (opts_.injectDefect != InjectDefect::none)
            injectByteDefect();
    } else {
        result_.manifest = RewriteManifest{};
    }
    result_.stats.clonedTables = engine.clones.size();
    result_.stats.rewrittenLoadedSize = out_.loadedSize();
    result_.blockCounters = engine.blockCounters;
    result_.entryCounters = engine.entryCounters;
    result_.image = std::move(out_);
    result_.ok = true;
    return result_;
}

/**
 * The sharded, streaming run (§4g of DESIGN.md). Three sequential
 * passes over the shard list — plan, layout+trampolines, emit — each
 * rebuilding one shard's CFG at a time from the (never mutated)
 * input, with the per-function relocation engine carrying only flat
 * address maps across shards. Processing functions in ascending
 * address order in every pass reproduces the monolithic pipeline's
 * bytes exactly; only peak memory differs.
 */
RewriteResult
Rewriter::runSharded(SbfSink &sink)
{
    if (opts_.reachabilityPruning && opts_.clobberOriginal) {
        result_.failReason = "reachability pruning lets original "
                             "code execute; it cannot be combined "
                             "with clobbering";
        return result_;
    }
    if (opts_.functionOrder != OrderPolicy::original ||
        opts_.blockOrder != OrderPolicy::original) {
        result_.failReason =
            "sharded rewriting requires original layout order";
        return result_;
    }
    if (opts_.injectDefect != InjectDefect::none) {
        result_.failReason =
            "sharded rewriting does not support fault injection";
        return result_;
    }
    if (pass_.cfg || pass_.previous) {
        result_.failReason =
            "sharded rewriting does not take a session pass";
        return result_;
    }

    // The analysis cache file is the coordination medium: workers
    // persist their shard's analysis there and the coordinator
    // replays it one shard at a time. Without a configured file, a
    // private temporary one serves for this run. The in-memory cache
    // is dropped up front so the per-shard bound holds from the
    // first shard (and so forked workers inherit an empty cache).
    std::string cache_path = opts_.cachePath;
    bool temp_cache = false;
    if (opts_.useAnalysisCache) {
        AnalysisCache::global().clear();
        if (cache_path.empty()) {
            cache_path = "/tmp/icp-shard-cache." +
                         std::to_string(::getpid()) + ".sbfc";
            std::remove(cache_path.c_str());
            temp_cache = true;
        }
    }

    const std::vector<ShardRange> ranges =
        planShards(input_, opts_.shards);
    result_.stats.shards.resize(ranges.size());
    if (opts_.useAnalysisCache) {
        runShardWorkers(input_, opts_, ranges, cache_path,
                        result_.stats.shards);
    }

    // (Re)build one shard's CFG. Saving before the clear persists
    // entries the coordinator itself computed for the previous shard
    // (cache misses — e.g. a degraded worker's range), so each range
    // is analyzed cold at most once across the three passes.
    auto buildShard = [&](const ShardRange &r) {
        if (opts_.useAnalysisCache) {
            AnalysisCache::global().save(cache_path);
            AnalysisCache::global().clear();
            AnalysisCache::global().load(cache_path, input_.arch);
        }
        AnalysisOptions analysis = opts_.analysis;
        analysis.threads = opts_.threads;
        analysis.useCache = opts_.useAnalysisCache;
        analysis.rangeLo = r.lo;
        analysis.rangeHi = r.hi;
        return buildCfg(input_, analysis);
    };

    // Legacy-identical base state: mutate only the copy; every shard
    // CFG decodes the unmutated input.
    out_ = input_;
    instrBase_ = input_.highWaterMark(4096);
    EngineConfig config;
    config.mode = opts_.mode;
    config.callEmulation = !opts_.raTranslation;
    config.instrumentation = opts_.instrumentation;
    config.instrBase = instrBase_;
    config.goRaTranslation =
        opts_.raTranslation && input_.features.isGo;
    config.threads = 1;
    const Section *text = input_.findSection(SectionKind::text);
    icp_assert(text, "input has no .text");
    newRodataBase_ =
        alignUp(instrBase_ + text->memSize * 4 + 0x10000, 4096);
    config.newRodataBase = newRodataBase_;

    IncrementalEngine engine(input_, config);
    FuncPtrScanner scanner(input_);

    // Pass 0 — plan: per-shard statistics, the function-pointer
    // scan, clone/counter planning, and the instrumented ranges.
    std::vector<std::pair<Addr, Addr>> instr_ranges;
    for (std::size_t k = 0; k < ranges.size(); ++k) {
        const CfgModule cfg = buildShard(ranges[k]);
        cfg_ = &cfg;
        const std::set<Addr> inst = chooseInstrumented();

        ShardCounters &sc = result_.stats.shards[k];
        sc.functions = cfg.totalFunctions();
        sc.instrumented = static_cast<unsigned>(inst.size());
        for (const auto &[entry, func] : cfg.functions) {
            (void)entry;
            sc.blocks += func.blocks.size();
            for (const auto &[start, block] : func.blocks) {
                (void)start;
                sc.insns += block.insns.size();
            }
        }
        result_.stats.totalFunctions += cfg.totalFunctions();
        result_.stats.instrumentableFunctions +=
            cfg.instrumentableFunctions();
        result_.stats.instrumentedFunctions +=
            static_cast<unsigned>(inst.size());

        {
            StageTimer timer(Stage::funcPtr);
            for (const auto &[entry, func] : cfg.functions) {
                (void)entry;
                scanner.scanFunction(func);
            }
        }
        for (Addr e : inst) {
            const Function &func = cfg.functions.at(e);
            engine.planFunction(func);
            instr_ranges.emplace_back(func.entry, func.end);
        }
        cfg_ = nullptr;
    }
    funcPtrs_ = scanner.take();
    result_.stats.originalLoadedSize = input_.loadedSize();

    // Pass A — layout and trampolines, interleaved per function. The
    // scratch pool evolves in the same ascending function order as
    // the monolithic path, so every install decision matches; a
    // function's CFL targets are in the block map the moment its own
    // layout completes.
    trampolineBegin();
    std::vector<FuncSpan> spans;
    const BlockLookup block_lookup = [&](Addr a) {
        return engine.lookupBlock(a);
    };
    const BlockLookup insn_lookup = [&](Addr a) {
        return engine.lookupInsn(a);
    };
    for (const ShardRange &r : ranges) {
        const CfgModule cfg = buildShard(r);
        cfg_ = &cfg;
        for (Addr e : chooseInstrumented()) {
            const Function &func = cfg.functions.at(e);
            {
                StageTimer timer(Stage::relocate);
                spans.push_back(engine.layoutFunction(func));
            }
            const std::set<Addr> cfl = cflBlocks(func);
            std::shared_ptr<const LivenessResult> live;
            if (arch_.fixedLength) {
                StageTimer timer(Stage::liveness);
                const bool cached =
                    opts_.useAnalysisCache && func.cacheKey != 0;
                if (cached) {
                    live = AnalysisCache::global().findLiveness(
                        func.cacheKey, func.entry);
                }
                if (!live) {
                    auto computed =
                        std::make_shared<LivenessResult>(
                            computeLiveness(func, arch_));
                    if (cached) {
                        AnalysisCache::global().storeLiveness(
                            func.cacheKey, input_.arch, func.entry,
                            *computed);
                    }
                    live = std::move(computed);
                }
            }
            StageTimer timer(Stage::trampoline);
            trampolineFunc(func, cfl, live.get(), block_lookup);
        }
        cfg_ = nullptr;
    }
    {
        StageTimer timer(Stage::trampoline);
        trampolineFinish();
    }

    const std::uint64_t instr_size = engine.layoutEnd() - instrBase_;
    icp_assert(instrBase_ + instr_size <= newRodataBase_,
               ".instr overflowed its window");
    result_.stats.relocEmittedFunctions =
        static_cast<unsigned>(spans.size());

    // The section list must be final — and every non-streamed
    // payload fully patched — before any byte is streamed. The
    // .instr payload alone stays unmaterialized (empty bytes, full
    // memSize); func-ptr patches that land in it are deferred to the
    // emission pass.
    Section instr;
    instr.name = ".instr";
    instr.kind = SectionKind::instr;
    instr.addr = instrBase_;
    instr.memSize = instr_size;
    instr.executable = true;
    out_.addSection(std::move(instr));

    std::vector<std::uint8_t> rodata = engine.cloneBytes();
    const std::uint64_t rodata_size = rodata.size();
    if (!rodata.empty()) {
        Section ro;
        ro.name = ".newrodata";
        ro.kind = SectionKind::newRodata;
        ro.addr = newRodataBase_;
        ro.memSize = rodata.size();
        ro.bytes = std::move(rodata);
        out_.addSection(std::move(ro));
    }

    std::vector<InstrPatch> deferred;
    rewriteFuncPtrs(block_lookup, insn_lookup, &deferred);
    if (opts_.clobberOriginal)
        clobberOriginal(instr_ranges);
    {
        StageTimer timer(Stage::output);
        buildSections(instr_size, rodata_size, engine.raPairs());
    }
    result_.stats.clonedTables = engine.clones().size();
    result_.stats.rewrittenLoadedSize = out_.loadedSize();
    result_.blockCounters = engine.blockCounters();
    result_.entryCounters = engine.entryCounters();

    // Pass B — emit and stream. Emission is deterministic in (CFG,
    // base), so re-emitting at the recorded spans with the complete
    // block map yields the final bytes function by function.
    std::sort(deferred.begin(), deferred.end(),
              [](const InstrPatch &a, const InstrPatch &b) {
                  return a.at < b.at;
              });
    SbfStreamWriter writer(sink,
                           opts_.streamWindowBytes
                               ? opts_.streamWindowBytes
                               : SbfStreamWriter::default_window);
    writer.beginImage(out_);
    for (const Section &sec : out_.sections) {
        if (sec.kind != SectionKind::instr) {
            writer.writeSection(sec);
            continue;
        }
        writer.beginStreamedSection(sec, instr_size);
        auto patch_it = deferred.cbegin();
        std::size_t span_idx = 0;
        Addr cursor = instrBase_;
        for (const ShardRange &r : ranges) {
            const CfgModule cfg = buildShard(r);
            cfg_ = &cfg;
            for (Addr e : chooseInstrumented()) {
                const Function &func = cfg.functions.at(e);
                const FuncSpan &span = spans[span_idx++];
                icp_assert(span.entry == func.entry,
                           "span/function order diverged");
                std::vector<std::uint8_t> bytes;
                {
                    StageTimer timer(Stage::relocate);
                    bytes = engine.emitFunction(func, span.base);
                }
                icp_assert(bytes.size() == span.size,
                           "emission size diverged from layout");
                for (; patch_it != deferred.cend() &&
                       patch_it->at < span.base + bytes.size();
                     ++patch_it) {
                    icp_assert(patch_it->at >= span.base,
                               "func-ptr patch outside any span");
                    const bool ok = patchInstructionAt(
                        bytes, span.base, patch_it->at,
                        [&](Instruction &in) {
                            applyFuncPtrMutation(
                                input_, in, patch_it->newTarget);
                        });
                    icp_assert(ok,
                               "func-ptr code patch failed at 0x%llx",
                               static_cast<unsigned long long>(
                                   patch_it->at));
                }
                if (cursor < span.base) {
                    const std::vector<std::uint8_t> pad =
                        engine.paddingBytes(cursor, span.base);
                    writer.addChunk(cursor - instrBase_, pad.data(),
                                    pad.size());
                }
                writer.addChunk(span.base - instrBase_, bytes.data(),
                                bytes.size());
                cursor = span.base + bytes.size();
            }
            cfg_ = nullptr;
        }
        icp_assert(cursor == engine.layoutEnd(),
                   "streamed payload diverged from layout");
        icp_assert(patch_it == deferred.cend(),
                   "unapplied func-ptr patches");
        writer.endStreamedSection();
    }
    writer.finishImage(out_);

    if (temp_cache) {
        std::remove(cache_path.c_str());
        std::remove((cache_path + ".lock").c_str());
    }

    // Manifests are a monolithic-path feature (the verifier wants
    // whole-image address maps); drop what accumulated.
    result_.manifest = RewriteManifest{};
    result_.ok = true;
    return result_;
}

} // namespace

RewriteResult
rewriteBinary(const BinaryImage &input, const RewriteOptions &options)
{
    const RewritePass pass;
    return rewriteBinary(input, options, pass);
}

RewriteResult
rewriteBinary(const BinaryImage &input, const RewriteOptions &options,
              const RewritePass &pass)
{
    // Cross-invocation persistence: merge the on-disk cache before
    // analysis runs, write it back after a successful rewrite. Both
    // directions are best-effort — a corrupt or unwritable file can
    // only cost analysis reuse, never correctness.
    const bool persist =
        !options.cachePath.empty() && options.useAnalysisCache;
    CacheLoadReport cache_load;
    if (persist) {
        StageTimer timer(Stage::cacheLoad);
        cache_load = AnalysisCache::global().load(options.cachePath,
                                                  input.arch);
    }

    Rewriter rewriter(input, options, pass);
    RewriteResult result = rewriter.run();
    result.cacheLoad = std::move(cache_load);

    if (persist && result.ok) {
        StageTimer timer(Stage::cacheSave);
        AnalysisCache::global().save(options.cachePath,
                                     options.cacheMaxBytes);
    }
    return result;
}

RewriteResult
rewriteBinarySharded(const BinaryImage &input,
                     const RewriteOptions &options, SbfSink &sink)
{
    // The load here only produces the user-facing report; the
    // coordinator re-merges the file itself, shard by shard.
    const bool persist =
        !options.cachePath.empty() && options.useAnalysisCache;
    CacheLoadReport cache_load;
    if (persist) {
        StageTimer timer(Stage::cacheLoad);
        cache_load = AnalysisCache::global().load(options.cachePath,
                                                  input.arch);
    }

    const RewritePass pass;
    Rewriter rewriter(input, options, pass);
    RewriteResult result = rewriter.runSharded(sink);
    result.cacheLoad = std::move(cache_load);

    if (persist && result.ok) {
        StageTimer timer(Stage::cacheSave);
        AnalysisCache::global().save(options.cachePath,
                                     options.cacheMaxBytes);
    }
    return result;
}

} // namespace icp
