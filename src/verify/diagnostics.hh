/**
 * @file
 * Diagnostics engine for the static soundness verifier: structured
 * findings with a rule id, severity, the original and rewritten
 * addresses involved, and the containing function, plus text and
 * JSON renderers built on the shared table support.
 */

#ifndef ICP_VERIFY_DIAGNOSTICS_HH
#define ICP_VERIFY_DIAGNOSTICS_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "support/types.hh"

namespace icp
{

enum class Severity : std::uint8_t
{
    info = 0,
    warning = 1,
    error = 2,
};

/** Printable severity name ("info" / "warning" / "error"). */
const char *severityName(Severity severity);

/** Parse a --fail-on argument; nullopt on unknown names. */
std::optional<Severity> parseSeverity(const std::string &name);

/** One finding from the verifier (or from SBF container checking). */
struct Diagnostic
{
    std::string rule;
    Severity severity = Severity::error;

    /** Original-image address involved (invalid_addr when none). */
    Addr origAddr = invalid_addr;

    /** Rewritten-image address involved (invalid_addr when none). */
    Addr newAddr = invalid_addr;

    std::string function; ///< containing function, when known
    std::string message;
};

/** A registered lint rule: id, default severity, one-line summary. */
struct LintRuleInfo
{
    const char *id;
    Severity severity;
    const char *summary;
};

/** The full rule registry (soundness + container rules). */
const std::vector<LintRuleInfo> &lintRules();

/** Number of findings with severity >= @p floor. */
unsigned countAtLeast(const std::vector<Diagnostic> &findings,
                      Severity floor);

/** Render findings as a text table (one row per finding). */
std::string
renderDiagnosticsText(const std::vector<Diagnostic> &findings);

/** Render findings as a JSON array of row objects. */
std::string
renderDiagnosticsJson(const std::vector<Diagnostic> &findings);

} // namespace icp

#endif // ICP_VERIFY_DIAGNOSTICS_HH
