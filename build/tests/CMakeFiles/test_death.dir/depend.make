# Empty dependencies file for test_death.
# This may be replaced when dependencies are built.
