#include "binfmt/addr_map.hh"

#include <algorithm>

#include "isa/bytes.hh"
#include "support/logging.hh"

namespace icp
{

AddrPairMap::AddrPairMap(std::vector<std::pair<Addr, Addr>> pairs)
    : pairs_(std::move(pairs))
{
    std::sort(pairs_.begin(), pairs_.end());
    for (std::size_t i = 1; i < pairs_.size(); ++i) {
        icp_assert(pairs_[i].first != pairs_[i - 1].first,
                   "AddrPairMap: duplicate key 0x%llx",
                   static_cast<unsigned long long>(pairs_[i].first));
    }
}

std::optional<Addr>
AddrPairMap::lookup(Addr key) const
{
    auto it = std::lower_bound(
        pairs_.begin(), pairs_.end(), key,
        [](const std::pair<Addr, Addr> &p, Addr k) {
            return p.first < k;
        });
    if (it == pairs_.end() || it->first != key)
        return std::nullopt;
    return it->second;
}

std::vector<std::uint8_t>
AddrPairMap::serialize() const
{
    std::vector<std::uint8_t> out;
    putU32(out, static_cast<std::uint32_t>(pairs_.size()));
    for (const auto &[from, to] : pairs_) {
        putU64(out, from);
        putU64(out, to);
    }
    return out;
}

AddrPairMap
AddrPairMap::parse(const std::vector<std::uint8_t> &bytes)
{
    icp_assert(bytes.size() >= 4, "addr map truncated");
    const std::uint32_t count = getU32(bytes.data());
    icp_assert(bytes.size() >= 4 + std::uint64_t{count} * 16,
               "addr map truncated");
    std::vector<std::pair<Addr, Addr>> pairs;
    pairs.reserve(count);
    std::size_t pos = 4;
    for (std::uint32_t i = 0; i < count; ++i) {
        const Addr from = getU64(bytes.data() + pos);
        const Addr to = getU64(bytes.data() + pos + 8);
        pairs.emplace_back(from, to);
        pos += 16;
    }
    return AddrPairMap(std::move(pairs));
}

} // namespace icp
