# Empty compiler generated dependencies file for test_trampoline.
# This may be replaced when dependencies are built.
