/**
 * @file
 * Code-layout transformation (the §8.3 use case): reverse the
 * function order and, separately, the basic-block order of a binary
 * with the incremental-CFG-patching rewriter, then prove behaviour
 * is unchanged. BOLT needs -Wl,-q link relocations for the first
 * and corrupted half the suite on the second; the patching approach
 * needs neither.
 *
 * Usage: ./build/examples/reorder_layout
 */

#include <cstdio>

#include "codegen/compiler.hh"
#include "codegen/workloads.hh"
#include "rewrite/rewriter.hh"
#include "sim/loader.hh"
#include "sim/machine.hh"

using namespace icp;

namespace
{

RunResult
run(const BinaryImage &img, bool with_runtime)
{
    auto proc = loadImage(img);
    Machine machine(*proc, Machine::Config{});
    RuntimeLib runtime(proc->module);
    if (with_runtime)
        machine.attachRuntimeLib(&runtime);
    return machine.run();
}

} // namespace

int
main()
{
    const BinaryImage img =
        compileProgram(specCpuSuite(Arch::x64, false)[0]);
    const RunResult golden = run(img, false);
    std::printf("golden: %s\n", golden.describe().c_str());

    for (const bool functions : {true, false}) {
        RewriteOptions options;
        options.mode = RewriteMode::jt;
        options.clobberOriginal = true;
        if (functions)
            options.functionOrder = OrderPolicy::reversed;
        else
            options.blockOrder = OrderPolicy::reversed;

        const RewriteResult rewritten = rewriteBinary(img, options);
        if (!rewritten.ok) {
            std::fprintf(stderr, "reorder failed: %s\n",
                         rewritten.failReason.c_str());
            return 1;
        }
        const RunResult result = run(rewritten.image, true);
        const bool ok = result.halted &&
                        result.checksum == golden.checksum;
        std::printf("reversed %-9s -> %s (checksum %s)\n",
                    functions ? "functions" : "blocks",
                    result.describe().c_str(),
                    ok ? "matches" : "MISMATCH");
        if (!ok)
            return 1;
    }
    std::printf("both layout permutations preserved behaviour — no "
                "link-time relocations needed.\n");
    return 0;
}
