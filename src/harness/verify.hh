/**
 * @file
 * The strong correctness test of §8: run the original binary, run
 * the rewritten binary (whose original instrumented-function bytes
 * were clobbered with illegal opcodes except for trampolines), and
 * compare termination, checksums, exception counts, and
 * function-entry instrumentation counters against natively recorded
 * control-transfer counts — the "executed once and only once when a
 * function is called" semantics of §1.
 */

#ifndef ICP_HARNESS_VERIFY_HH
#define ICP_HARNESS_VERIFY_HH

#include <string>

#include "rewrite/options.hh"
#include "sim/machine.hh"

namespace icp
{

struct VerifyOutcome
{
    bool pass = false;
    std::string reason;
    RunResult golden;
    RunResult rewritten;
};

/**
 * Run the golden and rewritten binaries under @p machine_cfg and
 * compare. The rewritten image should have been produced with
 * clobberOriginal and countFunctionEntries enabled for maximum
 * sensitivity.
 */
VerifyOutcome verifyRewrite(const BinaryImage &original,
                            const RewriteResult &rewritten,
                            Machine::Config machine_cfg);

} // namespace icp

#endif // ICP_HARNESS_VERIFY_HH
