/**
 * @file
 * The instruction-patching baseline (E9Patch-like): no control flow
 * is rewritten at all. Each instrumented block gets a trampoline to
 * an out-of-line stub holding the instrumentation plus a copy of the
 * block, and the stub branches straight back to the original next
 * address — the ping-pong the paper measures at >100% overhead
 * (§1, §2.2). Short-branch chaining through scratch space stands in
 * for E9Patch's instruction-punning tactics.
 *
 * Consequences reproduced by construction rather than special cases:
 * return addresses point into stubs, so C++ exceptions and Go
 * unwinding break (Table 1's "NA" for stack unwinding), and the
 * original code must stay intact (no strong-test clobbering).
 */

#ifndef ICP_BASELINES_INSTPATCH_HH
#define ICP_BASELINES_INSTPATCH_HH

#include "rewrite/options.hh"

namespace icp
{

/**
 * Patch every basic block of every analyzable function of @p input
 * (x86-64 only, like the original tool). Never fails outright;
 * runtime behaviour determines pass/fail.
 */
RewriteResult instPatchRewrite(const BinaryImage &input,
                               const InstrumentationSpec &instrumentation);

} // namespace icp

#endif // ICP_BASELINES_INSTPATCH_HH
