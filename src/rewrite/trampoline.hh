/**
 * @file
 * Trampoline instruction-sequence writer (§7, Table 2). Picks, per
 * CFL block, the cheapest sequence that fits the available
 * superblock space and reaches the relocated code:
 *
 *   x86-64:  5-byte near branch (±2 GB); 2-byte short branch
 *            chained through scratch space; trap.
 *   ppc64le: b (±32 MB); addis/addi/mtspr tar/bctar (TOC ±2 GB,
 *            4 instructions, or 6 with a stack spill when no dead
 *            register exists); chained through scratch; trap.
 *   aarch64: b (±128 MB); adrp/add/br (±2 GB, 3 instructions,
 *            requires a dead register); chained through scratch;
 *            trap.
 */

#ifndef ICP_REWRITE_TRAMPOLINE_HH
#define ICP_REWRITE_TRAMPOLINE_HH

#include <optional>
#include <vector>

#include "isa/arch.hh"
#include "rewrite/scratch.hh"

namespace icp
{

enum class TrampolineKind : std::uint8_t
{
    direct,        ///< single branch in place
    longForm,      ///< multi-instruction long-range form in place
    longFormSpill, ///< ppc64le long form with register spill
    multiHop,      ///< short/limited branch into scratch space
    trap,          ///< trap instruction; runtime library redirects
};

struct TrampolineRequest
{
    Addr at = 0;            ///< CFL block start
    std::uint64_t space = 0;///< superblock bytes available at @c at
    Addr target = 0;        ///< relocated destination
    Reg scratchReg = Reg::none; ///< dead register (liveness)
};

struct TrampolineWrite
{
    Addr at;
    std::vector<std::uint8_t> bytes;
};

struct TrampolineOut
{
    TrampolineKind kind = TrampolineKind::trap;
    std::vector<TrampolineWrite> writes;
    /** Trap-map entries (site -> relocated target). */
    std::vector<std::pair<Addr, Addr>> trapEntries;
};

class TrampolineWriter
{
  public:
    TrampolineWriter(const ArchInfo &arch, Addr toc_base,
                     ScratchPool &pool, bool multi_hop);

    /**
     * Phase 1: try the in-place forms only (direct branch, long
     * form, ppc spill form). nullopt when the block needs scratch
     * space or a trap; the caller can then donate the block's
     * unused superblock bytes to the pool before phase 2.
     */
    std::optional<TrampolineOut>
    installInPlace(const TrampolineRequest &req);

    /** Phase 2: multi-hop through the pool, then trap fallback. */
    TrampolineOut installWithFallback(const TrampolineRequest &req);

    /** Convenience: phase 1 then phase 2. */
    TrampolineOut install(const TrampolineRequest &req);

    /**
     * Force the in-place long form with req.scratchReg even when a
     * direct branch would reach (fixed ISAs only; the caller must
     * guarantee the space). Exists for fault injection: planting a
     * long form with a deliberately live (or TOC) scratch register
     * exercises the verifier's register rules.
     */
    TrampolineOut installForcedLongForm(const TrampolineRequest &req);

    /**
     * Force a trap trampoline regardless of what would fit. The
     * always-sound fallback (§4.3): RewriteSession::repair demotes a
     * function here when targeted re-rewrites failed to clear its
     * lint findings.
     */
    TrampolineOut installTrap(const TrampolineRequest &req);

    /** Length of the in-place long form (Table 2's Len column). */
    unsigned longFormLen() const;

  private:
    bool encodeDirect(Addr at, Addr target,
                      std::vector<std::uint8_t> &out) const;
    bool encodeShort(Addr at, Addr target,
                     std::vector<std::uint8_t> &out) const;
    std::vector<std::uint8_t> encodeLongForm(Addr at, Addr target,
                                             Reg scratch,
                                             bool spill) const;

    const ArchInfo &arch_;
    Addr tocBase_;
    ScratchPool &pool_;
    bool multiHop_;
};

} // namespace icp

#endif // ICP_REWRITE_TRAMPOLINE_HH
