file(REMOVE_RECURSE
  "libicp_support.a"
)
