/**
 * @file
 * Error-handling and status-message helpers, modeled after gem5's
 * logging.hh. panic() is for internal invariant violations (a bug in
 * this library); fatal() is for conditions caused by the caller or by
 * input data; warn()/inform() report conditions without aborting.
 */

#ifndef ICP_SUPPORT_LOGGING_HH
#define ICP_SUPPORT_LOGGING_HH

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace icp
{

/** Global verbosity switch: 0 = quiet, 1 = inform, 2 = debug. */
extern int log_verbosity;

namespace detail
{

[[noreturn]] void abortWithMessage(const char *kind, const char *file,
                                   int line, const std::string &msg);

void emitMessage(const char *kind, const std::string &msg);

/** Minimal printf-style formatter producing a std::string. */
std::string formatString(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

} // namespace detail

} // namespace icp

/**
 * Abort due to an internal library bug. Never use for bad input.
 */
#define icp_panic(...)                                                     \
    ::icp::detail::abortWithMessage("panic", __FILE__, __LINE__,           \
        ::icp::detail::formatString(__VA_ARGS__))

/**
 * Abort due to an unrecoverable caller/input error.
 */
#define icp_fatal(...)                                                     \
    ::icp::detail::abortWithMessage("fatal", __FILE__, __LINE__,           \
        ::icp::detail::formatString(__VA_ARGS__))

/** Report a suspicious but survivable condition. */
#define icp_warn(...)                                                      \
    ::icp::detail::emitMessage("warn",                                     \
        ::icp::detail::formatString(__VA_ARGS__))

/** Report normal operating status (suppressed when quiet). */
#define icp_inform(...)                                                    \
    do {                                                                   \
        if (::icp::log_verbosity >= 1) {                                   \
            ::icp::detail::emitMessage("info",                             \
                ::icp::detail::formatString(__VA_ARGS__));                 \
        }                                                                  \
    } while (0)

/** Assert an internal invariant; compiled in all build types. */
#define icp_assert(cond, ...)                                              \
    do {                                                                   \
        if (!(cond)) {                                                     \
            ::icp::detail::abortWithMessage("assert", __FILE__, __LINE__,  \
                ::icp::detail::formatString(__VA_ARGS__));                 \
        }                                                                  \
    } while (0)

#endif // ICP_SUPPORT_LOGGING_HH
