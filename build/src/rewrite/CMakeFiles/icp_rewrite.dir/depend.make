# Empty dependencies file for icp_rewrite.
# This may be replaced when dependencies are built.
