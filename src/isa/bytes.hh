/**
 * @file
 * Little-endian byte packing helpers shared by the codecs and the
 * binary-format serializers.
 */

#ifndef ICP_ISA_BYTES_HH
#define ICP_ISA_BYTES_HH

#include <cstdint>
#include <vector>

namespace icp
{

inline void
putU8(std::vector<std::uint8_t> &out, std::uint8_t v)
{
    out.push_back(v);
}

inline void
putU16(std::vector<std::uint8_t> &out, std::uint16_t v)
{
    out.push_back(static_cast<std::uint8_t>(v));
    out.push_back(static_cast<std::uint8_t>(v >> 8));
}

inline void
putU32(std::vector<std::uint8_t> &out, std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

inline void
putU64(std::vector<std::uint8_t> &out, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

inline std::uint16_t
getU16(const std::uint8_t *p)
{
    return static_cast<std::uint16_t>(p[0] | (p[1] << 8));
}

inline std::uint32_t
getU32(const std::uint8_t *p)
{
    return static_cast<std::uint32_t>(p[0]) |
           (static_cast<std::uint32_t>(p[1]) << 8) |
           (static_cast<std::uint32_t>(p[2]) << 16) |
           (static_cast<std::uint32_t>(p[3]) << 24);
}

inline std::uint64_t
getU64(const std::uint8_t *p)
{
    std::uint64_t v = 0;
    for (int i = 7; i >= 0; --i)
        v = (v << 8) | p[i];
    return v;
}

/** Sign-extend the low @p bits of v. */
inline std::int64_t
signExtend(std::uint64_t v, unsigned bits)
{
    const std::uint64_t m = 1ULL << (bits - 1);
    v &= (bits == 64) ? ~0ULL : ((1ULL << bits) - 1);
    return static_cast<std::int64_t>((v ^ m) - m);
}

/** True iff v fits in a signed field of @p bits. */
inline bool
fitsSigned(std::int64_t v, unsigned bits)
{
    const std::int64_t lo = -(1LL << (bits - 1));
    const std::int64_t hi = (1LL << (bits - 1)) - 1;
    return v >= lo && v <= hi;
}

} // namespace icp

#endif // ICP_ISA_BYTES_HH
