/**
 * @file
 * A profiling tool built on the public API: per-block execution
 * counting on a SPEC-like benchmark (the classic Dyninst use case
 * the paper's §10 discusses). Prints the hottest basic blocks with
 * their owning functions, and the infrastructure overhead of the
 * instrumented run.
 *
 * Usage: ./build/examples/block_counter [benchmark-index 0..18]
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "codegen/compiler.hh"
#include "codegen/workloads.hh"
#include "rewrite/rewriter.hh"
#include "sim/loader.hh"
#include "sim/machine.hh"

using namespace icp;

int
main(int argc, char **argv)
{
    const unsigned index =
        argc > 1 ? static_cast<unsigned>(std::atoi(argv[1])) : 1;
    const auto suite = specCpuSuite(Arch::x64, false);
    if (index >= suite.size()) {
        std::fprintf(stderr, "benchmark index out of range\n");
        return 1;
    }
    const auto names = specCpuNames();
    std::printf("profiling %s\n", names[index].c_str());
    const BinaryImage img = compileProgram(suite[index]);

    RewriteOptions options;
    options.mode = RewriteMode::funcPtr; // lowest-overhead mode
    options.instrumentation.countBlocks = true;
    const RewriteResult rewritten = rewriteBinary(img, options);
    if (!rewritten.ok) {
        std::fprintf(stderr, "rewrite failed: %s\n",
                     rewritten.failReason.c_str());
        return 1;
    }

    auto golden_proc = loadImage(img);
    Machine golden(*golden_proc, Machine::Config{});
    const RunResult golden_run = golden.run();

    auto proc = loadImage(rewritten.image);
    RuntimeLib runtime(proc->module);
    Machine machine(*proc, Machine::Config{});
    machine.attachRuntimeLib(&runtime);
    const RunResult run = machine.run();
    if (!run.halted || run.checksum != golden_run.checksum) {
        std::fprintf(stderr, "instrumented run diverged: %s\n",
                     run.describe().c_str());
        return 1;
    }

    // Rank blocks by execution count.
    struct Hot
    {
        Addr block;
        std::uint64_t count;
    };
    std::vector<Hot> hot;
    for (const auto &[block, id] : rewritten.blockCounters) {
        if (id < run.counters.size() && run.counters[id] > 0)
            hot.push_back({block, run.counters[id]});
    }
    std::sort(hot.begin(), hot.end(),
              [](const Hot &a, const Hot &b) {
                  return a.count > b.count;
              });

    std::printf("\n%-12s %-28s %s\n", "block", "function", "count");
    for (std::size_t i = 0; i < hot.size() && i < 10; ++i) {
        const Symbol *owner = img.functionContaining(hot[i].block);
        std::printf("0x%-10llx %-28s %llu\n",
                    static_cast<unsigned long long>(hot[i].block),
                    owner ? owner->name.c_str() : "?",
                    static_cast<unsigned long long>(hot[i].count));
    }
    std::printf("\n%zu blocks executed; counting overhead %.2f%% "
                "(counter increments dominate — see §10 on how tool "
                "usage, not the\nrewriting infrastructure, drives "
                "real-tool overhead)\n",
                hot.size(),
                (static_cast<double>(run.cycles) /
                     static_cast<double>(golden_run.cycles) -
                 1.0) * 100.0);
    return 0;
}
