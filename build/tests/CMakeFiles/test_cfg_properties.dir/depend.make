# Empty dependencies file for test_cfg_properties.
# This may be replaced when dependencies are built.
