#include "analysis/liveness.hh"

namespace icp
{

namespace
{

RegSet
allRegs()
{
    RegSet set;
    for (unsigned r = 0; r < num_regs; ++r)
        set.add(static_cast<Reg>(r));
    return set;
}

} // namespace

RegSet
LivenessResult::liveAtBlockStart(Addr block_start) const
{
    auto it = liveIn.find(block_start);
    return it == liveIn.end() ? allRegs() : it->second;
}

Reg
LivenessResult::deadRegAt(Addr block_start) const
{
    const RegSet live = liveAtBlockStart(block_start);
    for (unsigned r = 0; r < num_gp_regs; ++r) {
        const Reg reg = static_cast<Reg>(r);
        if (!live.contains(reg))
            return reg;
    }
    return Reg::none;
}

LivenessResult
computeLiveness(const Function &func, const ArchInfo &arch)
{
    LivenessResult result;

    // Block-local def/use summaries.
    struct Summary
    {
        RegSet use; ///< read before any write
        RegSet def; ///< written
    };
    // The synthetic ABI: r0 return value, r1 argument, r6/r8/r9
    // callee-saved; everything else is clobbered by a call.
    RegSet callerClobbered;
    for (unsigned r = 0; r < num_gp_regs; ++r) {
        const Reg reg = static_cast<Reg>(r);
        if (reg != Reg::r6 && reg != Reg::r8 && reg != Reg::r9)
            callerClobbered.add(reg);
    }

    std::map<Addr, Summary> summaries;
    for (const auto &[start, block] : func.blocks) {
        Summary s;
        for (const auto &in : block.insns) {
            RegSet reads = regsRead(in, arch);
            if (isCall(in.op)) {
                reads.add(Reg::r1);
                reads.add(Reg::sp);
            }
            reads -= s.def;
            s.use |= reads;
            s.def |= regsWritten(in, arch);
            if (isCall(in.op))
                s.def |= callerClobbered;
        }
        summaries[start] = s;
    }

    // Live-out seed: blocks leaving the function (returns, tail
    // calls, unresolved indirect flow) treat everything as live.
    std::map<Addr, RegSet> liveOut;
    auto outOf = [&](const Block &block) {
        RegSet out;
        if (block.endsFunction || block.endsInUnresolvedIndirect ||
            block.succs.empty()) {
            out = allRegs();
        }
        for (const auto &edge : block.succs) {
            auto it = result.liveIn.find(edge.target);
            if (it != result.liveIn.end())
                out |= it->second;
            else if (!func.blocks.count(edge.target))
                out = allRegs();
        }
        return out;
    };

    // Fixpoint (reverse order helps convergence).
    bool changed = true;
    unsigned rounds = 0;
    while (changed && rounds++ < 64) {
        changed = false;
        for (auto it = func.blocks.rbegin(); it != func.blocks.rend();
             ++it) {
            const Addr start = it->first;
            const Block &block = it->second;
            RegSet out = outOf(block);
            RegSet in = out;
            in -= summaries[start].def;
            in |= summaries[start].use;
            auto cur = result.liveIn.find(start);
            if (cur == result.liveIn.end() || !(cur->second == in)) {
                result.liveIn[start] = in;
                changed = true;
            }
        }
    }
    return result;
}

} // namespace icp
