file(REMOVE_RECURSE
  "CMakeFiles/test_death.dir/test_death.cc.o"
  "CMakeFiles/test_death.dir/test_death.cc.o.d"
  "test_death"
  "test_death.pdb"
  "test_death[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_death.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
