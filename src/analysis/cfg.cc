#include "analysis/cfg.hh"

namespace icp
{

const Block *
Function::blockAt(Addr a) const
{
    auto it = blocks.upper_bound(a);
    if (it == blocks.begin())
        return nullptr;
    --it;
    if (a < it->second.end)
        return &it->second;
    return nullptr;
}

Block *
Function::blockAt(Addr a)
{
    return const_cast<Block *>(
        static_cast<const Function *>(this)->blockAt(a));
}

std::set<Addr>
Function::jumpTableTargets() const
{
    std::set<Addr> targets;
    for (const auto &jt : jumpTables) {
        for (Addr t : jt.targets) {
            if (t >= entry && t < end)
                targets.insert(t);
        }
    }
    return targets;
}

unsigned
CfgModule::instrumentableFunctions() const
{
    unsigned n = 0;
    for (const auto &[addr, func] : functions) {
        if (func.instrumentable())
            ++n;
    }
    return n;
}

const Function *
CfgModule::functionAt(Addr entry) const
{
    auto it = functions.find(entry);
    return it == functions.end() ? nullptr : &it->second;
}

} // namespace icp
