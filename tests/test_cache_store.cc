/**
 * @file
 * Tests for the on-disk AnalysisCache (analysis/cache_store.hh):
 * save/load round-trips restore every entry; a simulated process
 * restart (clear + load) reuses >= 95% of function analyses and
 * rewrites byte-identically; and every corruption mode — missing
 * file, foreign magic, wrong version, truncated tail, flipped
 * payload byte, wrong-ISA entries — loads as empty-or-partial with
 * one structured cache-* issue per problem, never a crash, and never
 * a different rewrite output.
 */

#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include <sys/stat.h>

#include <gtest/gtest.h>

#include "analysis/cache.hh"
#include "analysis/cache_store.hh"
#include "codegen/compiler.hh"
#include "codegen/workloads.hh"
#include "isa/bytes.hh"
#include "support/stats.hh"
#include "rewrite/rewriter.hh"

using namespace icp;

namespace
{

BinaryImage
compileMicro(Arch arch, bool pie = true)
{
    return compileProgram(microProfile(arch, pie));
}

RewriteOptions
baseOptions(const std::string &cache_path = "")
{
    RewriteOptions opts;
    opts.mode = RewriteMode::funcPtr;
    opts.instrumentation.countBlocks = true;
    opts.cachePath = cache_path;
    return opts;
}

std::string
tmpPath(const std::string &name)
{
    return "/tmp/icp_cache_store_" + name + ".icpc";
}

std::vector<std::uint8_t>
readAll(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in) << path;
    return std::vector<std::uint8_t>(
        std::istreambuf_iterator<char>(in),
        std::istreambuf_iterator<char>());
}

void
writeAll(const std::string &path,
         const std::vector<std::uint8_t> &bytes)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(out) << path;
    out.write(reinterpret_cast<const char *>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
}

bool
hasIssue(const CacheLoadReport &rep, const std::string &rule)
{
    for (const CacheFileIssue &issue : rep.issues)
        if (issue.rule == rule)
            return true;
    return false;
}

/**
 * Cold rewrite that also populates the cache file at @p path:
 * returns the serialized output for byte-comparisons.
 */
std::vector<std::uint8_t>
coldRewrite(const BinaryImage &img, const std::string &path)
{
    AnalysisCache::global().clear();
    std::remove(path.c_str());
    const RewriteResult rw = rewriteBinary(img, baseOptions(path));
    EXPECT_TRUE(rw.ok) << rw.failReason;
    EXPECT_TRUE(rw.cacheLoad.clean());
    return rw.image.serialize();
}

} // namespace

// --- round trip across a simulated process restart ------------------------

class CacheStoreArch : public ::testing::TestWithParam<Arch>
{
};

TEST_P(CacheStoreArch, RestartReusesAnalysesAndMatchesBytes)
{
    const Arch arch = GetParam();
    const BinaryImage img = compileMicro(arch);
    const std::string path =
        tmpPath(std::string("restart_") + archName(arch));

    const std::vector<std::uint8_t> cold = coldRewrite(img, path);

    // "Process restart": the in-memory cache is gone, only the file
    // remains.
    AnalysisCache::global().clear();
    const RewriteResult warm = rewriteBinary(img, baseOptions(path));
    ASSERT_TRUE(warm.ok) << warm.failReason;
    EXPECT_TRUE(warm.cacheLoad.clean());
    EXPECT_GT(warm.cacheLoad.loadedFunctions, 0u);

    const auto stats = AnalysisCache::global().stats();
    const std::uint64_t lookups =
        stats.functionHits + stats.functionMisses;
    ASSERT_GT(lookups, 0u);
    // The acceptance bar: >= 95% of function analyses reused from
    // the file. (Identical input means 100% here.)
    EXPECT_GE(static_cast<double>(stats.functionHits),
              0.95 * static_cast<double>(lookups))
        << stats.functionHits << "/" << lookups;

    EXPECT_EQ(warm.image.serialize(), cold);
}

TEST_P(CacheStoreArch, SaveLoadRestoresEveryEntry)
{
    const Arch arch = GetParam();
    const BinaryImage img = compileMicro(arch);
    const std::string path =
        tmpPath(std::string("roundtrip_") + archName(arch));

    coldRewrite(img, path);
    const std::size_t entries = AnalysisCache::global().entryCount();
    ASSERT_GT(entries, 0u);

    AnalysisCache::global().clear();
    const CacheLoadReport rep =
        AnalysisCache::global().load(path, arch);
    EXPECT_TRUE(rep.fileRead);
    EXPECT_TRUE(rep.clean())
        << (rep.issues.empty() ? "" : rep.issues.front().message);
    EXPECT_EQ(rep.loadedEntries(), entries);
    EXPECT_EQ(rep.droppedEntries, 0u);
    EXPECT_EQ(AnalysisCache::global().entryCount(), entries);
}

INSTANTIATE_TEST_SUITE_P(
    AllArchs, CacheStoreArch,
    ::testing::Values(Arch::x64, Arch::ppc64le, Arch::aarch64),
    [](const ::testing::TestParamInfo<Arch> &info) {
        std::string name = archName(info.param);
        for (char &c : name)
            if (c == '-')
                c = '_';
        return name;
    });

// --- corruption tolerance -------------------------------------------------

namespace
{

/** A populated, valid cache file for mutation tests (x64 micro). */
std::vector<std::uint8_t>
validCacheFile(const std::string &path)
{
    const BinaryImage img = compileMicro(Arch::x64);
    coldRewrite(img, path);
    return readAll(path);
}

} // namespace

TEST(CacheStore, MissingFileIsEmptyAndClean)
{
    AnalysisCache::global().clear();
    const CacheLoadReport rep = AnalysisCache::global().load(
        "/tmp/icp_cache_store_definitely_missing.icpc");
    EXPECT_FALSE(rep.fileRead);
    EXPECT_TRUE(rep.clean());
    EXPECT_EQ(rep.loadedEntries(), 0u);
    EXPECT_EQ(AnalysisCache::global().entryCount(), 0u);
}

TEST(CacheStore, ForeignMagicLoadsEmptyWithIssue)
{
    const std::string path = tmpPath("magic");
    std::vector<std::uint8_t> raw = validCacheFile(path);
    raw[0] ^= 0xff;
    writeAll(path, raw);

    AnalysisCache::global().clear();
    const CacheLoadReport rep = AnalysisCache::global().load(path);
    EXPECT_TRUE(rep.fileRead);
    EXPECT_TRUE(hasIssue(rep, "cache-magic"));
    EXPECT_EQ(rep.loadedEntries(), 0u);
    EXPECT_EQ(AnalysisCache::global().entryCount(), 0u);
}

TEST(CacheStore, WrongVersionLoadsEmptyWithIssue)
{
    const std::string path = tmpPath("version");
    std::vector<std::uint8_t> raw = validCacheFile(path);
    // Version is the u32 after the magic.
    raw[4] = static_cast<std::uint8_t>(cache_file_version + 1);
    writeAll(path, raw);

    AnalysisCache::global().clear();
    const CacheLoadReport rep = AnalysisCache::global().load(path);
    EXPECT_TRUE(hasIssue(rep, "cache-version"));
    EXPECT_EQ(rep.loadedEntries(), 0u);
    EXPECT_EQ(AnalysisCache::global().entryCount(), 0u);
}

TEST(CacheStore, TruncatedFileLoadsPartialWithIssue)
{
    const std::string path = tmpPath("truncated");
    std::vector<std::uint8_t> raw = validCacheFile(path);
    const std::size_t total = raw.size();
    // Cut the file mid-way through the segment body — the shape a
    // writer killed mid-append leaves behind. A strict prefix of
    // entries is salvaged, the rest is reported, nothing crashes.
    raw.resize(total / 2);
    writeAll(path, raw);

    AnalysisCache::global().clear();
    const CacheLoadReport rep = AnalysisCache::global().load(path);
    EXPECT_TRUE(rep.fileRead);
    EXPECT_TRUE(hasIssue(rep, "cache-torn"));
    EXPECT_GE(rep.droppedEntries, 1u);
    EXPECT_EQ(AnalysisCache::global().entryCount(),
              rep.loadedEntries());
}

TEST(CacheStore, FlippedPayloadByteDegradesToLazyMiss)
{
    const std::string path = tmpPath("checksum");
    const BinaryImage img = compileMicro(Arch::x64);
    const std::vector<std::uint8_t> cold = coldRewrite(img, path);
    std::vector<std::uint8_t> raw = readAll(path);
    AnalysisCache::global().clear();
    const CacheLoadReport clean_rep =
        AnalysisCache::global().load(path);
    const unsigned total = clean_rep.loadedEntries();
    ASSERT_GE(total, 2u);

    // First entry starts after the file header and the first
    // segment header; its payload starts one entry header further
    // (kind u8 + arch u8 + key u64 + payloadLen u32 + payloadHash
    // u64). Flip the payload's first byte so only the checksum can
    // catch it.
    const std::size_t payload0 = cache_file_header_bytes +
                                 cache_segment_header_bytes +
                                 cache_entry_header_bytes;
    ASSERT_LT(payload0, raw.size());
    raw[payload0] ^= 0x01;
    writeAll(path, raw);

    // load() only walks headers, so the structural pass stays clean
    // and indexes every entry; the flipped payload is caught by the
    // lazy checksum at first lookup and degrades to a miss.
    AnalysisCache::global().clear();
    const CacheLoadReport rep = AnalysisCache::global().load(path);
    EXPECT_TRUE(rep.clean());
    EXPECT_EQ(rep.droppedEntries, 0u);
    EXPECT_EQ(rep.loadedEntries(), total);

    // The eager verifier still pinpoints the corruption.
    const CacheLoadReport verify = verifyCacheFile(path);
    EXPECT_TRUE(hasIssue(verify, "cache-checksum"));
    EXPECT_EQ(verify.droppedEntries, 1u);

    // And a rewrite against the corrupt file re-analyzes the one
    // damaged function and still produces identical bytes.
    AnalysisCache::global().clear();
    const RewriteResult warm = rewriteBinary(img, baseOptions(path));
    ASSERT_TRUE(warm.ok) << warm.failReason;
    EXPECT_EQ(warm.image.serialize(), cold);
    EXPECT_GE(AnalysisCache::global().stats().misses(), 1u);
}

TEST(CacheStore, WrongIsaEntriesAreDroppedWithIssue)
{
    const std::string path = tmpPath("wrong_isa");
    // Populate the file from a ppc64le rewrite...
    const BinaryImage img = compileMicro(Arch::ppc64le);
    coldRewrite(img, path);

    // ...then load it expecting x64: every entry is foreign.
    AnalysisCache::global().clear();
    const CacheLoadReport rep =
        AnalysisCache::global().load(path, Arch::x64);
    EXPECT_TRUE(rep.fileRead);
    EXPECT_TRUE(hasIssue(rep, "cache-arch"));
    EXPECT_EQ(rep.loadedEntries(), 0u);
    EXPECT_GE(rep.droppedEntries, 1u);
    EXPECT_EQ(AnalysisCache::global().entryCount(), 0u);
}

TEST(CacheStore, InMemoryEntriesWinOverFileEntries)
{
    const std::string path = tmpPath("merge");
    const BinaryImage img = compileMicro(Arch::x64);
    coldRewrite(img, path);
    const std::size_t entries = AnalysisCache::global().entryCount();

    // Load on top of the same in-memory state: nothing new.
    const CacheLoadReport rep =
        AnalysisCache::global().load(path, Arch::x64);
    EXPECT_TRUE(rep.clean());
    EXPECT_EQ(rep.loadedEntries(), 0u);
    EXPECT_EQ(rep.skippedExisting, entries);
    EXPECT_EQ(AnalysisCache::global().entryCount(), entries);
}

// --- corrupt cache never changes the rewrite ------------------------------

class CacheCorruptionRewrite : public ::testing::TestWithParam<Arch>
{
};

TEST_P(CacheCorruptionRewrite, RewriteAfterBadLoadIsByteIdentical)
{
    const Arch arch = GetParam();
    const BinaryImage img = compileMicro(arch);
    const std::string path =
        tmpPath(std::string("corrupt_") + archName(arch));

    const std::vector<std::uint8_t> cold = coldRewrite(img, path);
    std::vector<std::uint8_t> raw = readAll(path);

    // Corrupt every fourth byte after the header: a mix of checksum
    // failures, undecodable entries, and truncation.
    for (std::size_t i = 12; i < raw.size(); i += 4)
        raw[i] ^= 0xa5;
    writeAll(path, raw);

    AnalysisCache::global().clear();
    const RewriteResult rw = rewriteBinary(img, baseOptions(path));
    ASSERT_TRUE(rw.ok) << rw.failReason;
    EXPECT_TRUE(rw.cacheLoad.fileRead);
    EXPECT_FALSE(rw.cacheLoad.clean());
    EXPECT_EQ(rw.image.serialize(), cold);
}

INSTANTIATE_TEST_SUITE_P(
    AllArchs, CacheCorruptionRewrite,
    ::testing::Values(Arch::x64, Arch::ppc64le, Arch::aarch64),
    [](const ::testing::TestParamInfo<Arch> &info) {
        std::string name = archName(info.param);
        for (char &c : name)
            if (c == '-')
                c = '_';
        return name;
    });

// --- v2 store: delta saves, merging, compaction, migration -----------------

namespace
{

struct FileStamp
{
    std::uint64_t size = 0;
    std::int64_t mtimeSec = 0;
    std::int64_t mtimeNsec = 0;

    bool
    operator==(const FileStamp &o) const
    {
        return size == o.size && mtimeSec == o.mtimeSec &&
               mtimeNsec == o.mtimeNsec;
    }
};

FileStamp
stampOf(const std::string &path)
{
    struct stat st;
    EXPECT_EQ(::stat(path.c_str(), &st), 0) << path;
    FileStamp s;
    s.size = static_cast<std::uint64_t>(st.st_size);
    s.mtimeSec = st.st_mtim.tv_sec;
    s.mtimeNsec = st.st_mtim.tv_nsec;
    return s;
}

} // namespace

/**
 * The acceptance matrix: for every ISA, outputs stay byte-identical
 * to the cold run through every on-disk cache state — lazy mmap
 * load, a delta-append from a second workload, the merged
 * two-segment file, and the compacted file.
 */
TEST_P(CacheStoreArch, DeltaMergeCompactStatesStayByteIdentical)
{
    const Arch arch = GetParam();
    const BinaryImage img = compileMicro(arch);
    const BinaryImage other = compileMicro(arch, /*pie=*/false);
    const std::string path =
        tmpPath(std::string("states_") + archName(arch));

    // State 1: fresh single-segment file.
    const std::vector<std::uint8_t> cold = coldRewrite(img, path);
    const std::uint64_t size_one = stampOf(path).size;

    // State 2: a second workload delta-appends its (disjoint-key)
    // entries as a new segment instead of rewriting the file.
    AnalysisCache::global().clear();
    const RewriteResult second =
        rewriteBinary(other, baseOptions(path));
    ASSERT_TRUE(second.ok) << second.failReason;
    const std::vector<std::uint8_t> cold_other =
        second.image.serialize();
    const CacheFileInfo merged = inspectCacheFile(path);
    EXPECT_EQ(merged.version, cache_file_version);
    EXPECT_GE(merged.segments, 2u);
    EXPECT_GT(merged.fileBytes, size_one);

    // State 3: lazy-load from the merged file reproduces both
    // workloads byte-for-byte.
    AnalysisCache::global().clear();
    const RewriteResult warm = rewriteBinary(img, baseOptions(path));
    ASSERT_TRUE(warm.ok) << warm.failReason;
    EXPECT_EQ(warm.image.serialize(), cold);
    AnalysisCache::global().clear();
    const RewriteResult warm_other =
        rewriteBinary(other, baseOptions(path));
    ASSERT_TRUE(warm_other.ok) << warm_other.failReason;
    EXPECT_EQ(warm_other.image.serialize(), cold_other);

    const CacheLoadReport verify = verifyCacheFile(path);
    EXPECT_TRUE(verify.clean())
        << (verify.issues.empty() ? ""
                                  : verify.issues.front().message);

    // State 4: compaction (unbounded: dedup + single segment) keeps
    // everything reusable and the outputs identical.
    CacheCompactionResult compaction;
    ASSERT_TRUE(compactCacheFile(path, 0, compaction));
    EXPECT_TRUE(compaction.performed);
    EXPECT_EQ(compaction.entriesEvicted, 0u);
    EXPECT_EQ(inspectCacheFile(path).segments, 1u);

    AnalysisCache::global().clear();
    const RewriteResult compacted =
        rewriteBinary(img, baseOptions(path));
    ASSERT_TRUE(compacted.ok) << compacted.failReason;
    EXPECT_TRUE(compacted.cacheLoad.clean());
    EXPECT_EQ(compacted.image.serialize(), cold);
}

TEST(CacheStore, PureWarmSaveLeavesFileUntouched)
{
    const std::string path = tmpPath("noop_save");
    const BinaryImage img = compileMicro(Arch::x64);
    const std::vector<std::uint8_t> cold = coldRewrite(img, path);
    const FileStamp before = stampOf(path);
    const std::vector<std::uint8_t> bytes_before = readAll(path);

    // Make sure a rewrite of the file would move the mtime.
    std::this_thread::sleep_for(std::chrono::milliseconds(20));

    AnalysisCache::global().clear();
    const RewriteResult warm = rewriteBinary(img, baseOptions(path));
    ASSERT_TRUE(warm.ok) << warm.failReason;
    EXPECT_EQ(warm.image.serialize(), cold);

    // 100%-hit run: the save had nothing to append and must not
    // have touched the file at all.
    const FileStamp after = stampOf(path);
    EXPECT_TRUE(before == after)
        << "size " << before.size << " -> " << after.size;
    EXPECT_EQ(readAll(path), bytes_before);
}

TEST(CacheStore, SaveMergesWithEntriesFromOtherWriters)
{
    const std::string path = tmpPath("merge_writers");
    const BinaryImage img = compileMicro(Arch::x64);
    const BinaryImage other = compileMicro(Arch::x64, /*pie=*/false);

    // Writer 1 persists workload A.
    coldRewrite(img, path);
    AnalysisCache::global().clear();
    const CacheLoadReport first = AnalysisCache::global().load(path);
    const unsigned count_a = first.loadedEntries();
    ASSERT_GT(count_a, 0u);

    // Writer 2 analyzed workload B with no knowledge of the file
    // (simulating a concurrent shard); its save must merge, not
    // clobber.
    AnalysisCache::global().clear();
    const RewriteResult rw = rewriteBinary(other, baseOptions(""));
    ASSERT_TRUE(rw.ok) << rw.failReason;
    const std::size_t count_b = AnalysisCache::global().entryCount();
    ASSERT_GT(count_b, 0u);
    ASSERT_TRUE(AnalysisCache::global().save(path));

    AnalysisCache::global().clear();
    const CacheLoadReport rep = AnalysisCache::global().load(path);
    EXPECT_TRUE(rep.clean())
        << (rep.issues.empty() ? "" : rep.issues.front().message);
    EXPECT_EQ(rep.loadedEntries(), count_a + count_b);
}

TEST(CacheStore, TornFinalSegmentKeepsPriorSegmentsReadable)
{
    const std::string path = tmpPath("torn_tail");
    const BinaryImage img = compileMicro(Arch::x64);
    const BinaryImage other = compileMicro(Arch::x64, /*pie=*/false);

    // Two segments: A then B.
    coldRewrite(img, path);
    AnalysisCache::global().clear();
    const CacheLoadReport first = AnalysisCache::global().load(path);
    const unsigned count_a = first.loadedEntries();
    const std::uint64_t size_a = stampOf(path).size;
    AnalysisCache::global().clear();
    ASSERT_TRUE(rewriteBinary(other, baseOptions(path)).ok);
    AnalysisCache::global().clear();
    const unsigned count_total =
        AnalysisCache::global().load(path).loadedEntries();
    ASSERT_GT(count_total, count_a);

    // Tear segment B: drop the file's last 10 bytes (a writer died
    // mid-append). Segment A must stay fully readable and B's
    // surviving prefix is salvaged.
    std::vector<std::uint8_t> raw = readAll(path);
    raw.resize(raw.size() - 10);
    writeAll(path, raw);

    AnalysisCache::global().clear();
    const CacheLoadReport rep = AnalysisCache::global().load(path);
    EXPECT_TRUE(hasIssue(rep, "cache-torn"));
    EXPECT_GE(rep.droppedEntries, 1u);
    EXPECT_GE(rep.loadedEntries(), count_a);
    EXPECT_LT(rep.loadedEntries(), count_total);
    EXPECT_EQ(inspectCacheFile(path).segments, 1u);
    (void)size_a;

    // The next save repairs the tail with a full atomic rewrite.
    ASSERT_TRUE(AnalysisCache::global().save(path));
    const CacheLoadReport verify = verifyCacheFile(path);
    EXPECT_TRUE(verify.clean())
        << (verify.issues.empty() ? ""
                                  : verify.issues.front().message);
    EXPECT_EQ(verify.loadedEntries(), rep.loadedEntries());
}

TEST(CacheStore, CompactionEvictsOldestGenerationsUnderSizeCap)
{
    const std::string path = tmpPath("compact_cap");
    const BinaryImage img = compileMicro(Arch::x64);
    const BinaryImage other = compileMicro(Arch::x64, /*pie=*/false);

    // Segment A (generation g), then segment B (generation g+1).
    coldRewrite(img, path);
    const std::uint64_t size_a = stampOf(path).size;
    AnalysisCache::global().clear();
    const RewriteResult second =
        rewriteBinary(other, baseOptions(path));
    ASSERT_TRUE(second.ok);
    const std::vector<std::uint8_t> cold_other =
        second.image.serialize();
    const std::uint64_t size_ab = stampOf(path).size;
    const std::uint64_t seg_b_bytes = size_ab - size_a;

    // Cap sized to hold exactly segment B's entries: compaction must
    // keep the newest generation (B) and evict all of A.
    const std::uint64_t cap =
        cache_file_header_bytes + seg_b_bytes;
    CacheCompactionResult compaction;
    ASSERT_TRUE(compactCacheFile(path, cap, compaction));
    EXPECT_TRUE(compaction.performed);
    EXPECT_GT(compaction.entriesEvicted, 0u);
    EXPECT_GT(compaction.entriesKept, 0u);
    EXPECT_LE(compaction.bytesAfter, cap);
    EXPECT_LE(stampOf(path).size, cap);

    // The kept entries are B's: a warm rewrite of B reuses all of
    // its analyses and stays byte-identical.
    AnalysisCache::global().clear();
    const RewriteResult warm =
        rewriteBinary(other, baseOptions(path));
    ASSERT_TRUE(warm.ok) << warm.failReason;
    EXPECT_TRUE(warm.cacheLoad.clean());
    const auto stats = AnalysisCache::global().stats();
    EXPECT_EQ(stats.misses(), 0u)
        << stats.functionMisses << " function / "
        << stats.livenessMisses << " liveness misses";
    EXPECT_EQ(warm.image.serialize(), cold_other);
}

TEST(CacheStore, AutoCompactionTriggersOnSaveWhenOverCap)
{
    const std::string path = tmpPath("auto_compact");
    const BinaryImage img = compileMicro(Arch::x64);
    const BinaryImage other = compileMicro(Arch::x64, /*pie=*/false);

    coldRewrite(img, path);
    const std::uint64_t size_a = stampOf(path).size;

    // Second workload saves through RewriteOptions::cacheMaxBytes:
    // the append pushes the file over the cap, so the save compacts
    // it back under.
    AnalysisCache::global().clear();
    RewriteOptions opts = baseOptions(path);
    opts.cacheMaxBytes = size_a + cache_file_header_bytes;
    const RewriteResult rw = rewriteBinary(other, opts);
    ASSERT_TRUE(rw.ok) << rw.failReason;
    EXPECT_LE(stampOf(path).size, opts.cacheMaxBytes);
    const CacheLoadReport verify = verifyCacheFile(path);
    EXPECT_TRUE(verify.clean());
}

TEST(CacheStore, V1FramingLoadsReadOnlyWithInfoDiagnostic)
{
    const std::string path = tmpPath("migrate_v1");
    const BinaryImage img = compileMicro(Arch::x64);
    const std::vector<std::uint8_t> cold = coldRewrite(img, path);
    AnalysisCache::global().clear();
    const unsigned count =
        AnalysisCache::global().load(path).loadedEntries();
    ASSERT_GT(count, 0u);

    // Synthesize the v1 layout (magic, version=1, entryCount,
    // entries) from the v4 file's first-segment body: the entry
    // *framing* is identical across versions, and these bodies hold
    // v4 position-independent kinds, so they stay loadable.
    const std::vector<std::uint8_t> v2 = readAll(path);
    std::vector<std::uint8_t> v1;
    putU32(v1, cache_file_magic);
    putU32(v1, 1);
    putU32(v1, count);
    const std::size_t body = cache_file_header_bytes +
                             cache_segment_header_bytes;
    ASSERT_LT(body, v2.size());
    v1.insert(v1.end(), v2.begin() + body, v2.end());
    writeAll(path, v1);

    // Loads read-only with exactly one info-grade migration issue.
    AnalysisCache::global().clear();
    const CacheLoadReport rep = AnalysisCache::global().load(path);
    EXPECT_TRUE(rep.fileRead);
    EXPECT_EQ(rep.fileVersion, 1u);
    EXPECT_EQ(rep.loadedEntries(), count);
    EXPECT_EQ(rep.droppedEntries, 0u);
    ASSERT_EQ(rep.issues.size(), 1u);
    EXPECT_EQ(rep.issues.front().rule, "cache-migrated");

    // The warm rewrite over a v1 file is still byte-identical, and
    // its save rewrites the file in the current format.
    const RewriteResult warm = rewriteBinary(img, baseOptions(path));
    ASSERT_TRUE(warm.ok) << warm.failReason;
    EXPECT_EQ(warm.image.serialize(), cold);
    const CacheFileInfo info = inspectCacheFile(path);
    EXPECT_EQ(info.version, cache_file_version);
    AnalysisCache::global().clear();
    const CacheLoadReport reloaded =
        AnalysisCache::global().load(path);
    EXPECT_TRUE(reloaded.clean());
    EXPECT_EQ(reloaded.loadedEntries(), count);
}

// --- v3 data read-sets: round trip and version compatibility ---------------

namespace
{

/** One parsed entry record: its kind and raw on-disk bytes. */
struct ParsedEntry
{
    std::uint8_t kind = 0;
    std::vector<std::uint8_t> bytes; ///< header + payload
};

/** Walk a segmented cache file's entry records (test-side parser). */
std::vector<ParsedEntry>
parseEntries(const std::vector<std::uint8_t> &raw)
{
    std::vector<ParsedEntry> entries;
    std::size_t pos = cache_file_header_bytes;
    while (pos + cache_segment_header_bytes <= raw.size()) {
        const std::uint32_t count = getU32(raw.data() + pos + 4);
        pos += cache_segment_header_bytes;
        for (std::uint32_t i = 0; i < count; ++i) {
            EXPECT_LE(pos + cache_entry_header_bytes, raw.size());
            const std::uint32_t len = getU32(raw.data() + pos + 10);
            const std::size_t total = cache_entry_header_bytes + len;
            EXPECT_LE(pos + total, raw.size());
            ParsedEntry e;
            e.kind = raw[pos];
            e.bytes.assign(raw.begin() + static_cast<long>(pos),
                           raw.begin() + static_cast<long>(pos) +
                               static_cast<long>(total));
            entries.push_back(std::move(e));
            pos += total;
        }
    }
    return entries;
}

/** Frame @p body as a single-segment file of @p version. */
std::vector<std::uint8_t>
frameCacheFile(std::uint32_t version, std::uint32_t entry_count,
               const std::vector<std::uint8_t> &body)
{
    std::vector<std::uint8_t> out;
    putU32(out, cache_file_magic);
    putU32(out, version);
    putU64(out, 1); // file generation
    std::vector<std::uint8_t> seg;
    putU32(seg, cache_segment_magic);
    putU32(seg, entry_count);
    putU64(seg, body.size());
    putU64(seg, 1); // segment generation
    putU64(seg, fnv1a(seg.data(), 24));
    out.insert(out.end(), seg.begin(), seg.end());
    out.insert(out.end(), body.begin(), body.end());
    return out;
}

} // namespace

TEST(CacheStore, V3FileCarriesDataDepsEntries)
{
    const std::string path = tmpPath("v3_deps");
    coldRewrite(compileMicro(Arch::x64), path);

    const CacheFileInfo info = inspectCacheFile(path);
    EXPECT_EQ(info.version, cache_file_version);
    EXPECT_GT(info.functionEntries, 0u);
    EXPECT_GT(info.dataDepsEntries, 0u);
    EXPECT_EQ(info.otherEntries, 0u);

    AnalysisCache::global().clear();
    const CacheLoadReport rep = AnalysisCache::global().load(path);
    EXPECT_TRUE(rep.clean());
    EXPECT_EQ(rep.loadedDataDeps, info.dataDepsEntries);
    EXPECT_EQ(rep.skippedUnknown, 0u);
}

TEST(CacheStore, UnknownEntryKindIsSkippedNeverFatal)
{
    const std::string path = tmpPath("unknown_kind");
    const BinaryImage img = compileMicro(Arch::x64);
    const std::vector<std::uint8_t> cold = coldRewrite(img, path);
    AnalysisCache::global().clear();
    const unsigned before =
        AnalysisCache::global().load(path).loadedEntries();

    // Append a well-formed segment holding one entry of a kind this
    // build has never heard of — what a newer writer would leave.
    std::vector<std::uint8_t> entry;
    const std::vector<std::uint8_t> payload = {0xde, 0xad, 0xbe,
                                               0xef};
    putU8(entry, 77); // future entry kind
    putU8(entry, static_cast<std::uint8_t>(Arch::x64));
    putU64(entry, 0x77777777ULL);
    putU32(entry, static_cast<std::uint32_t>(payload.size()));
    putU64(entry, fnv1a(payload.data(), payload.size()));
    entry.insert(entry.end(), payload.begin(), payload.end());
    std::vector<std::uint8_t> seg;
    putU32(seg, cache_segment_magic);
    putU32(seg, 1);
    putU64(seg, entry.size());
    putU64(seg, 99); // newer generation
    putU64(seg, fnv1a(seg.data(), 24));
    seg.insert(seg.end(), entry.begin(), entry.end());
    std::vector<std::uint8_t> raw = readAll(path);
    raw.insert(raw.end(), seg.begin(), seg.end());
    writeAll(path, raw);

    // Structural tolerance: the unknown entry is skipped with one
    // info-shaped cache-skip issue; everything else loads.
    AnalysisCache::global().clear();
    const CacheLoadReport rep = AnalysisCache::global().load(path);
    EXPECT_TRUE(rep.fileRead);
    EXPECT_EQ(rep.skippedUnknown, 1u);
    EXPECT_TRUE(hasIssue(rep, "cache-skip"));
    EXPECT_EQ(rep.droppedEntries, 0u);
    EXPECT_EQ(rep.loadedEntries(), before);

    // The eager verifier and the header walker agree.
    const CacheLoadReport verify = verifyCacheFile(path);
    EXPECT_EQ(verify.skippedUnknown, 1u);
    EXPECT_TRUE(hasIssue(verify, "cache-skip"));
    EXPECT_EQ(inspectCacheFile(path).otherEntries, 1u);

    // And a warm rewrite through the file is unaffected.
    AnalysisCache::global().clear();
    const RewriteResult warm = rewriteBinary(img, baseOptions(path));
    ASSERT_TRUE(warm.ok) << warm.failReason;
    EXPECT_EQ(warm.image.serialize(), cold);
}

TEST(CacheStore, V4FileWithoutDepsDegradesToConservativeMisses)
{
    const std::string path = tmpPath("v4_nodeps");
    const BinaryImage img = compileMicro(Arch::x64);
    const std::vector<std::uint8_t> cold = coldRewrite(img, path);

    // Synthesize a v4 file whose data read-set entries are missing
    // (caching interrupted before the deps landed): same framing,
    // same function and liveness payloads.
    const std::vector<std::uint8_t> raw = readAll(path);
    std::vector<std::uint8_t> body;
    std::uint32_t kept = 0;
    unsigned deps_dropped = 0;
    for (const ParsedEntry &e : parseEntries(raw)) {
        if (e.kind == 6) {
            ++deps_dropped;
            continue;
        }
        body.insert(body.end(), e.bytes.begin(), e.bytes.end());
        ++kept;
    }
    ASSERT_GT(deps_dropped, 0u);
    ASSERT_GT(kept, 0u);
    writeAll(path, frameCacheFile(cache_file_version, kept, body));

    // The file loads cleanly: functions index, no deps entries
    // exist to load.
    AnalysisCache::global().clear();
    const CacheLoadReport rep = AnalysisCache::global().load(path);
    EXPECT_TRUE(rep.clean());
    EXPECT_EQ(rep.fileVersion, cache_file_version);
    EXPECT_GT(rep.loadedFunctions, 0u);
    EXPECT_EQ(rep.loadedDataDeps, 0u);

    // Absent read-sets make code-keyed hits unverifiable, so the
    // consumer rejects them and re-analyzes (conservative miss) —
    // and still emits byte-identical output.
    const std::uint64_t rejected_before =
        DepsCounters::global().hitsRejected.load();
    const RewriteResult warm = rewriteBinary(img, baseOptions(path));
    ASSERT_TRUE(warm.ok) << warm.failReason;
    EXPECT_EQ(warm.image.serialize(), cold);
    EXPECT_GT(DepsCounters::global().hitsRejected.load(),
              rejected_before);
}

// --- legacy migration matrix: v1/v2/v3 files under a v4 reader -------------

namespace
{

/**
 * One hand-framed absolute-form legacy entry (kinds 1-3). The
 * payload bytes are opaque to a v4 reader by design — it must skip
 * them without ever decoding.
 */
std::vector<std::uint8_t>
legacyEntry(std::uint8_t kind, std::uint64_t key)
{
    const std::vector<std::uint8_t> payload = {0x01, 0x02, 0x03,
                                               0x04, 0x05};
    std::vector<std::uint8_t> out;
    putU8(out, kind);
    putU8(out, static_cast<std::uint8_t>(Arch::x64));
    putU64(out, key);
    putU32(out, static_cast<std::uint32_t>(payload.size()));
    putU64(out, fnv1a(payload.data(), payload.size()));
    out.insert(out.end(), payload.begin(), payload.end());
    return out;
}

/**
 * The shared matrix body: a version-N file holding absolute-form
 * entries must load with per-entry degradation (never a crash), a
 * rewrite against it must be byte-identical to cold, and the
 * rewrite's save must leave a clean v4 file with the legacy entries
 * gone.
 */
void
runLegacyMigration(std::uint32_t file_version,
                   const std::vector<std::uint8_t> &legacy_kinds)
{
    const std::string path =
        tmpPath("migrate_v" + std::to_string(file_version));
    const BinaryImage img = compileMicro(Arch::x64);
    const std::vector<std::uint8_t> cold = coldRewrite(img, path);
    std::remove(path.c_str());

    std::vector<std::uint8_t> body;
    std::uint32_t count = 0;
    for (std::uint8_t kind : legacy_kinds) {
        const std::vector<std::uint8_t> e =
            legacyEntry(kind, 0x1000ULL + kind);
        body.insert(body.end(), e.begin(), e.end());
        ++count;
    }
    if (file_version == 1) {
        // v1 framing: magic, version, entryCount, entries.
        std::vector<std::uint8_t> v1;
        putU32(v1, cache_file_magic);
        putU32(v1, 1);
        putU32(v1, count);
        v1.insert(v1.end(), body.begin(), body.end());
        writeAll(path, v1);
    } else {
        writeAll(path, frameCacheFile(file_version, count, body));
    }

    // Load: every absolute-form entry degrades to a miss, with one
    // summarizing cache-legacy issue.
    AnalysisCache::global().clear();
    const CacheLoadReport rep = AnalysisCache::global().load(path);
    EXPECT_TRUE(rep.fileRead);
    EXPECT_EQ(rep.fileVersion, file_version);
    EXPECT_EQ(rep.skippedLegacy, count);
    EXPECT_EQ(rep.loadedEntries(), 0u);
    EXPECT_EQ(rep.droppedEntries, 0u);
    EXPECT_TRUE(hasIssue(rep, "cache-legacy"));

    // A rewrite through the legacy file re-analyzes everything and
    // stays byte-identical; its save rewrites the file as v4 with
    // the unusable legacy entries dropped.
    const RewriteResult warm = rewriteBinary(img, baseOptions(path));
    ASSERT_TRUE(warm.ok) << warm.failReason;
    EXPECT_EQ(warm.image.serialize(), cold);

    const CacheFileInfo info = inspectCacheFile(path);
    EXPECT_EQ(info.version, cache_file_version);
    EXPECT_EQ(info.legacyEntries, 0u);
    EXPECT_GT(info.functionEntries, 0u);
    const CacheLoadReport verify = verifyCacheFile(path);
    EXPECT_TRUE(verify.clean())
        << (verify.issues.empty() ? ""
                                  : verify.issues.front().message);

    // And the converged v4 file serves the image fully warm.
    AnalysisCache::global().clear();
    const RewriteResult again =
        rewriteBinary(img, baseOptions(path));
    ASSERT_TRUE(again.ok) << again.failReason;
    EXPECT_EQ(again.image.serialize(), cold);
    EXPECT_EQ(AnalysisCache::global().stats().functionMisses, 0u);
}

} // namespace

TEST(CacheStore, V1FileWithLegacyEntriesMigratesToV4)
{
    runLegacyMigration(1, {1, 2});
}

TEST(CacheStore, V2FileWithLegacyEntriesMigratesToV4)
{
    runLegacyMigration(2, {1, 2});
}

TEST(CacheStore, V3FileWithLegacyEntriesMigratesToV4)
{
    runLegacyMigration(3, {1, 2, 3});
}

TEST(CacheStore, TornV4TailAfterLegacySegmentSalvages)
{
    // A v3-era segment followed by a torn v4 append: the legacy
    // entries degrade, the torn tail salvages entry-by-entry, and
    // nothing crashes.
    const std::string path = tmpPath("torn_after_legacy");
    const BinaryImage img = compileMicro(Arch::x64);
    const std::vector<std::uint8_t> cold = coldRewrite(img, path);

    std::vector<std::uint8_t> raw = readAll(path);
    // Prepend a legacy entry as its own segment by rebuilding the
    // file: header, legacy segment, then the original segment(s).
    std::vector<std::uint8_t> legacy_body = legacyEntry(2, 0x2002);
    std::vector<std::uint8_t> rebuilt;
    putU32(rebuilt, cache_file_magic);
    putU32(rebuilt, cache_file_version);
    putU64(rebuilt, 1);
    std::vector<std::uint8_t> seg;
    putU32(seg, cache_segment_magic);
    putU32(seg, 1);
    putU64(seg, legacy_body.size());
    putU64(seg, 1);
    putU64(seg, fnv1a(seg.data(), 24));
    rebuilt.insert(rebuilt.end(), seg.begin(), seg.end());
    rebuilt.insert(rebuilt.end(), legacy_body.begin(),
                   legacy_body.end());
    rebuilt.insert(rebuilt.end(),
                   raw.begin() + cache_file_header_bytes, raw.end());
    // Tear the final segment: drop the last 7 bytes.
    rebuilt.resize(rebuilt.size() - 7);
    writeAll(path, rebuilt);

    AnalysisCache::global().clear();
    const CacheLoadReport rep = AnalysisCache::global().load(path);
    EXPECT_TRUE(rep.fileRead);
    EXPECT_EQ(rep.skippedLegacy, 1u);
    EXPECT_TRUE(hasIssue(rep, "cache-legacy"));
    EXPECT_TRUE(hasIssue(rep, "cache-torn"));
    EXPECT_GT(rep.loadedEntries(), 0u);

    const RewriteResult warm = rewriteBinary(img, baseOptions(path));
    ASSERT_TRUE(warm.ok) << warm.failReason;
    EXPECT_EQ(warm.image.serialize(), cold);
}

TEST(CacheStore, DataEditAppendsReplacementDepsEntries)
{
    const std::string path = tmpPath("data_edit");
    const BinaryImage img = compileMicro(Arch::x64);
    coldRewrite(img, path);

    // Redirect one jump-table entry onto another: same code bytes
    // (same cache keys), different data contents.
    AnalysisOptions aopts;
    aopts.useCache = false;
    const CfgModule cfg = buildCfg(img, aopts);
    const JumpTable *jt = nullptr;
    for (const auto &[entry, func] : cfg.functions) {
        (void)entry;
        for (const JumpTable &t : func.jumpTables)
            if (!t.embeddedInCode && t.targets.size() >= 2 &&
                t.targets[0] != t.targets[1])
                jt = &t;
    }
    ASSERT_NE(jt, nullptr);
    BinaryImage edited = compileMicro(Arch::x64);
    std::vector<std::uint8_t> donor;
    ASSERT_TRUE(edited.readBytes(jt->tableAddr + jt->entrySize,
                                 jt->entrySize, donor));
    ASSERT_TRUE(edited.writeBytes(jt->tableAddr, donor));

    // Warm rewrite of the edited image: the table reader's hit fails
    // read-set validation and re-analyzes; save() appends the
    // replacement function+deps entries for the stale keys.
    AnalysisCache::global().clear();
    const std::uint64_t rejected_before =
        DepsCounters::global().hitsRejected.load();
    const RewriteResult first =
        rewriteBinary(edited, baseOptions(path));
    ASSERT_TRUE(first.ok) << first.failReason;
    EXPECT_GT(DepsCounters::global().hitsRejected.load(),
              rejected_before);
    EXPECT_GE(inspectCacheFile(path).segments, 2u);

    // The converged file serves the edited image fully warm: newest
    // occurrence of the key wins, its deps hash clean.
    AnalysisCache::global().clear();
    const std::uint64_t rejected_mid =
        DepsCounters::global().hitsRejected.load();
    const RewriteResult second =
        rewriteBinary(edited, baseOptions(path));
    ASSERT_TRUE(second.ok) << second.failReason;
    EXPECT_EQ(DepsCounters::global().hitsRejected.load(),
              rejected_mid);
    EXPECT_EQ(second.image.serialize(), first.image.serialize());
}
