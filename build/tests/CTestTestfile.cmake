# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_support[1]_include.cmake")
include("/root/repo/build/tests/test_isa[1]_include.cmake")
include("/root/repo/build/tests/test_binfmt[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_codegen[1]_include.cmake")
include("/root/repo/build/tests/test_analysis[1]_include.cmake")
include("/root/repo/build/tests/test_rewrite[1]_include.cmake")
include("/root/repo/build/tests/test_baselines[1]_include.cmake")
include("/root/repo/build/tests/test_dynamic[1]_include.cmake")
include("/root/repo/build/tests/test_trampoline[1]_include.cmake")
include("/root/repo/build/tests/test_selective[1]_include.cmake")
include("/root/repo/build/tests/test_engine[1]_include.cmake")
include("/root/repo/build/tests/test_trampoline_exec[1]_include.cmake")
include("/root/repo/build/tests/test_go_runtime[1]_include.cmake")
include("/root/repo/build/tests/test_harness[1]_include.cmake")
include("/root/repo/build/tests/test_shape[1]_include.cmake")
include("/root/repo/build/tests/test_cfg_properties[1]_include.cmake")
include("/root/repo/build/tests/test_jump_table_unit[1]_include.cmake")
include("/root/repo/build/tests/test_funcptr_unit[1]_include.cmake")
include("/root/repo/build/tests/test_death[1]_include.cmake")
include("/root/repo/build/tests/test_loader[1]_include.cmake")
include("/root/repo/build/tests/test_cli[1]_include.cmake")
include("/root/repo/build/tests/test_rewrite_suite[1]_include.cmake")
