/**
 * @file
 * The incremental analysis cache: the "incremental" in incremental
 * CFG patching applied to analysis time. Per-function analysis
 * results (CFG with jump tables, liveness summaries) are memoized
 * under an FNV-1a key of the function's byte range, entry address,
 * architecture, and analysis options, so re-rewriting an unchanged
 * (or slightly changed) binary skips almost all analysis work: only
 * functions whose bytes actually changed are re-analyzed.
 *
 * Keying caveat: the key covers the function's own bytes plus every
 * non-executable loadable section (jump-table data may live in
 * .rodata), hashed once per image. Changing any data section
 * therefore invalidates the whole image's entries — conservative,
 * but never stale for the supported scenario.
 */

#ifndef ICP_ANALYSIS_CACHE_HH
#define ICP_ANALYSIS_CACHE_HH

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "analysis/builder.hh"
#include "analysis/liveness.hh"

namespace icp
{

struct CacheLoadReport; // analysis/cache_store.hh

/** Incremental FNV-1a (64-bit). */
std::uint64_t fnv1a(const void *data, std::size_t len,
                    std::uint64_t hash = 0xcbf29ce484222325ULL);

/**
 * Image-wide key component: architecture, PIE-ness, analysis
 * options, and all non-executable loadable bytes. Computed once per
 * buildCfg call and folded into every function key.
 */
std::uint64_t imageCacheSeed(const BinaryImage &image,
                             const AnalysisOptions &opts);

/**
 * Key of one function's analysis results under @p seed: its entry,
 * size, name, landing-pad layout, and code bytes.
 */
std::uint64_t functionCacheKey(const BinaryImage &image,
                               const Symbol &sym,
                               const std::vector<TryRange> &tries,
                               std::uint64_t seed);

/**
 * Process-wide memo of per-function analysis results. Thread-safe;
 * entries are shared immutable snapshots. Consulted by buildCfg
 * (function CFGs) and the rewriter (liveness), so the second
 * rewrite of the same image reuses >= 95% of analysis work.
 */
class AnalysisCache
{
  public:
    struct Stats
    {
        std::uint64_t functionHits = 0;
        std::uint64_t functionMisses = 0;
        std::uint64_t livenessHits = 0;
        std::uint64_t livenessMisses = 0;

        std::uint64_t
        hits() const
        {
            return functionHits + livenessHits;
        }

        std::uint64_t
        misses() const
        {
            return functionMisses + livenessMisses;
        }
    };

    static AnalysisCache &global();

    /** nullptr on miss. Counts a hit/miss either way. */
    std::shared_ptr<const Function> findFunction(std::uint64_t key);
    void storeFunction(std::uint64_t key, Arch arch, Function func);

    std::shared_ptr<const LivenessResult>
    findLiveness(std::uint64_t key);
    void storeLiveness(std::uint64_t key, Arch arch,
                       LivenessResult live);

    Stats stats() const;
    std::size_t entryCount() const;
    void clear();

    // --- on-disk persistence (implemented in cache_store.cc) -----------

    /**
     * Serialize every entry to @p path in the versioned, per-entry
     * checksummed cache-file format of analysis/cache_store.hh.
     * Returns false when the file cannot be written.
     */
    bool save(const std::string &path) const;

    /**
     * Merge entries from @p path. Tolerant by construction: a
     * missing file, a bad magic/version, and corrupt or truncated
     * entries load as empty-or-partial, each recorded as a
     * structured cache-* issue on the report — never a crash. When
     * @p expect_arch is set, entries tagged with any other ISA are
     * dropped (their keys could never be looked up, but dropping
     * keeps the merge bounded and reports the mismatch). Existing
     * in-memory entries win over file entries with the same key.
     */
    CacheLoadReport load(const std::string &path,
                         std::optional<Arch> expect_arch = {});

  private:
    /** One memoized result, tagged with the ISA it was built for. */
    template <typename T> struct Entry
    {
        Arch arch = Arch::x64;
        std::shared_ptr<const T> value;
    };

    mutable std::mutex mu_;
    std::unordered_map<std::uint64_t, Entry<Function>> functions_;
    std::unordered_map<std::uint64_t, Entry<LivenessResult>>
        liveness_;
    Stats stats_;
};

} // namespace icp

#endif // ICP_ANALYSIS_CACHE_HH
