/**
 * @file
 * Jump-table analysis (§5.1): backward slicing from an indirect
 * jump, implemented as an abstract interpretation over the
 * containing block. Recognizes the per-arch table idioms emitted by
 * mainstream compilers (PIC-relative x64 tables, absolute x64
 * tables, TOC-addressed code-embedded ppc64le tables, anchor-
 * relative sub-word aarch64 tables) and reports failure when the
 * value chain escapes the window — e.g. through a stack spill.
 *
 * A failure-injection plan reproduces Figure 2's three failure
 * modes on demand: analysis reporting failure, over-approximation,
 * and under-approximation of the table extent.
 */

#ifndef ICP_ANALYSIS_JUMP_TABLE_HH
#define ICP_ANALYSIS_JUMP_TABLE_HH

#include <optional>

#include "analysis/cfg.hh"

namespace icp
{

/** Deterministic failure injection for Figure 2 experiments. */
struct JumpTableFailurePlan
{
    double failProb = 0.0;  ///< force "analysis reporting failure"
    double overProb = 0.0;  ///< inflate the entry count
    double underProb = 0.0; ///< cut the entry count
    unsigned overExtra = 4;
    unsigned underCut = 2;
    std::uint64_t seed = 0;

    bool
    enabled() const
    {
        return failProb > 0 || overProb > 0 || underProb > 0;
    }
};

class JumpTableAnalyzer
{
  public:
    JumpTableAnalyzer(const BinaryImage &image,
                      const JumpTableFailurePlan &plan);

    /**
     * Analyze the indirect jump terminating @p block. @p layout_pred
     * is the block that falls through into it (holding the bounds
     * check), when known.
     *
     * @return the resolved table, or nullopt (analysis reporting
     *         failure).
     */
    std::optional<JumpTable> analyze(const Block &block,
                                     const Block *layout_pred) const;

  private:
    const BinaryImage &image_;
    JumpTableFailurePlan plan_;
};

} // namespace icp

#endif // ICP_ANALYSIS_JUMP_TABLE_HH
