# Empty dependencies file for sbf_inspect.
# This may be replaced when dependencies are built.
