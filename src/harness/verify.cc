#include "harness/verify.hh"

#include <cstdio>

#include "sim/loader.hh"
#include "support/logging.hh"

namespace icp
{

VerifyOutcome
verifyRewrite(const BinaryImage &original,
              const RewriteResult &rewritten,
              Machine::Config machine_cfg)
{
    VerifyOutcome outcome;
    if (!rewritten.ok) {
        outcome.reason = "rewrite failed: " + rewritten.failReason;
        return outcome;
    }

    // Golden run with native transfer recording.
    {
        auto proc = loadImage(original);
        Machine::Config cfg = machine_cfg;
        cfg.recordTransferTargets = true;
        Machine machine(*proc, cfg);
        outcome.golden = machine.run();
    }
    if (!outcome.golden.halted) {
        outcome.reason = "golden run did not halt: " +
                         outcome.golden.describe();
        return outcome;
    }

    // Rewritten run with the runtime library preloaded.
    {
        auto proc = loadImage(rewritten.image);
        RuntimeLib rt(proc->module);
        Machine machine(*proc, machine_cfg);
        machine.attachRuntimeLib(&rt);
        outcome.rewritten = machine.run();
    }
    if (!outcome.rewritten.halted) {
        outcome.reason = "rewritten run faulted: " +
                         outcome.rewritten.describe();
        return outcome;
    }

    if (outcome.rewritten.checksum != outcome.golden.checksum) {
        char buf[128];
        std::snprintf(buf, sizeof(buf),
                      "checksum mismatch: golden 0x%llx vs 0x%llx",
                      static_cast<unsigned long long>(
                          outcome.golden.checksum),
                      static_cast<unsigned long long>(
                          outcome.rewritten.checksum));
        outcome.reason = buf;
        return outcome;
    }
    if (outcome.rewritten.exceptionsThrown !=
        outcome.golden.exceptionsThrown) {
        outcome.reason = "exception count mismatch";
        return outcome;
    }

    // Function-entry instrumentation semantics.
    for (const auto &[entry, id] : rewritten.entryCounters) {
        const std::uint64_t counted =
            id < outcome.rewritten.counters.size()
                ? outcome.rewritten.counters[id]
                : 0;
        auto it = outcome.golden.transferTargets.find(entry);
        const std::uint64_t native =
            it == outcome.golden.transferTargets.end() ? 0
                                                       : it->second;
        if (counted != native) {
            char buf[160];
            std::snprintf(
                buf, sizeof(buf),
                "entry counter mismatch at 0x%llx: counted %llu, "
                "native %llu",
                static_cast<unsigned long long>(entry),
                static_cast<unsigned long long>(counted),
                static_cast<unsigned long long>(native));
            outcome.reason = buf;
            return outcome;
        }
    }

    outcome.pass = true;
    return outcome;
}

} // namespace icp
