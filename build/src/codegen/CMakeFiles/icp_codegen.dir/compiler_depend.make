# Empty compiler generated dependencies file for icp_codegen.
# This may be replaced when dependencies are built.
